open Rd_addr
open Rd_config
open Rd_routing

type t = {
  graph : Process_graph.t;
  proc_ribs : Rib.t array;
  local_ribs : Rib.t array;
  router_ribs : Rib.t array;
  iterations : int;
  converged : bool;
}

let lookup_acl (cfg : Ast.t) name = Ast.find_acl cfg name

(* Filter predicate for a route crossing a policy boundary. *)
let route_map_pass (cfg : Ast.t) name (r : Rib.route) =
  match Ast.find_route_map cfg name with
  | None -> Some r
  | Some rm -> (
    match
      Rd_policy.Route_map.eval rm ~lookup_acl:(lookup_acl cfg)
        ~lookup_prefix_list:(Ast.find_prefix_list cfg)
        { Rd_policy.Route_map.net = r.dest; tag = r.tag; metric = Some r.metric }
    with
    | Rd_policy.Route_map.Denied -> None
    | Rd_policy.Route_map.Permitted rr ->
      Some { r with tag = rr.Rd_policy.Route_map.tag; metric = Option.value rr.metric ~default:r.metric })

(* [via_iface]: the interface the routes cross, when known — interface-
   qualified distribute-lists (Figure 2's "distribute-list 44 in
   Serial1/0.5") then apply too. *)
let dlist_pass ?via_iface (cfg : Ast.t) (p : Process.t) direction (r : Rib.route) =
  List.for_all
    (fun (d : Ast.distribute_list) ->
      let applies =
        d.dl_direction = direction
        && (match d.dl_interface with
            | None -> true
            | Some i -> (match via_iface with Some v -> String.equal i v | None -> false))
      in
      (not applies)
      ||
      match lookup_acl cfg d.dl_acl with
      | Some acl -> Rd_policy.Acl.eval_route acl r.dest = Ast.Permit
      | None -> true)
    p.ast.dlists

let neighbor_pass (cfg : Ast.t) (n : Ast.neighbor) direction (r : Rib.route) =
  let dl_ok =
    List.for_all
      (fun (acl_name, d) ->
        d <> direction
        ||
        match lookup_acl cfg acl_name with
        | Some acl -> Rd_policy.Acl.eval_route acl r.dest = Ast.Permit
        | None -> true)
      n.nb_dlists
    && List.for_all
         (fun (pl_name, d) ->
           d <> direction
           ||
           match Ast.find_prefix_list cfg pl_name with
           | Some pl -> Rd_policy.Prefix_list_policy.eval pl r.dest = Ast.Permit
           | None -> true)
         n.nb_prefix_lists
  in
  if not dl_ok then None
  else begin
    let rec maps r = function
      | [] -> Some r
      | (rm_name, d) :: rest ->
        if d <> direction then maps r rest
        else begin
          match route_map_pass cfg rm_name r with
          | None -> None
          | Some r -> maps r rest
        end
    in
    maps r (List.map (fun x -> x) n.nb_route_maps)
  end

let local_rib_of (cfg : Ast.t) =
  let rib = ref Rib.empty in
  List.iter
    (fun (i : Ast.interface) ->
      if not i.shutdown then
        List.iter
          (fun p ->
            rib := Rib.add !rib (Rib.mk p Rib.Connected))
          (Ast.interface_prefixes i))
    cfg.interfaces;
  List.iter
    (fun (s : Ast.static_route) ->
      let next_hop = match s.sr_next_hop with Ast.Nh_addr a -> Some a | Ast.Nh_iface _ -> None in
      rib := Rib.add !rib (Rib.mk ~next_hop ?ad_override:s.sr_distance s.sr_dest Rib.Static))
    cfg.statics;
  !rib

let run ?metrics ?faults ?cancel ?(limits = Rd_util.Limits.default)
    ?(external_prefixes = [ Prefix.default ]) (graph : Process_graph.t) =
  (* Batched observability counters, flushed to the registry once at the
     end of the run (per-route registry updates would dominate). *)
  let installed = ref 0 and redist_events = ref 0 in
  let catalog = graph.catalog in
  let nproc = Array.length catalog.processes in
  let nrouter = Array.length catalog.topo.routers in
  let proc_ribs = Array.make nproc Rib.empty in
  let local_ribs =
    Array.init nrouter (fun ri -> local_rib_of (snd catalog.topo.routers.(ri)))
  in
  (* Seed process RIBs: covered connected subnets + BGP network statements. *)
  Array.iter
    (fun (ifc : Rd_topo.Topology.iface) ->
      match (ifc.address, ifc.subnet) with
      | Some (a, _), Some s ->
        List.iter
          (fun pid ->
            let p = catalog.processes.(pid) in
            if p.protocol <> Ast.Bgp && Process.covers p a then
              proc_ribs.(pid) <-
                Rib.add proc_ribs.(pid) (Rib.mk s (Rib.Proto (p.protocol, `Internal))))
          catalog.by_router.(ifc.router)
      | _ -> ())
    catalog.topo.ifaces;
  Array.iter
    (fun (p : Process.t) ->
      List.iter
        (function
          | Ast.Net_mask pr ->
            proc_ribs.(p.pid) <-
              Rib.add proc_ribs.(p.pid) (Rib.mk pr (Rib.Proto (Ast.Bgp, `Internal)))
          | _ -> ())
        p.ast.networks)
    catalog.processes;
  (* External offers on external peerings and IGP edge links. *)
  let inject_external (p : Process.t) ?(as_path = []) mk_source pass =
    List.iter
      (fun pr ->
        let r = Rib.mk ~as_path pr mk_source in
        match pass r with
        | Some r -> proc_ribs.(p.pid) <- Rib.add proc_ribs.(p.pid) r
        | None -> ())
      external_prefixes
  in
  List.iter
    (fun (ep : Adjacency.external_peering) ->
      let p = catalog.processes.(ep.proc) in
      let cfg = snd catalog.topo.routers.(p.router) in
      let n = List.find_opt (fun (n : Ast.neighbor) -> Ipv4.equal n.peer ep.peer_addr) p.ast.neighbors in
      inject_external p ~as_path:[ ep.remote_asn ]
        (Rib.Proto (Ast.Bgp, `External))
        (fun r ->
          match n with Some n -> neighbor_pass cfg n Ast.In r | None -> Some r))
    graph.adjacency.external_peerings;
  List.iter
    (fun (pid, _subnet) ->
      let p = catalog.processes.(pid) in
      let cfg = snd catalog.topo.routers.(p.router) in
      inject_external p
        (Rib.Proto (p.protocol, `External))
        (fun r -> if dlist_pass cfg p Ast.In r then Some r else None))
    graph.adjacency.igp_external_edges;
  (* Fixpoint propagation. *)
  let changed = ref true in
  let iterations = ref 0 in
  let add_to_proc pid (r : Rib.route) =
    let before = Rib.find proc_ribs.(pid) r.dest in
    let rib' = Rib.add proc_ribs.(pid) r in
    if not (before = Rib.find rib' r.dest) then begin
      proc_ribs.(pid) <- rib';
      incr installed;
      changed := true
    end
  in
  let transfer_adjacent (a : Adjacency.t) =
    let flow src dst =
      let p = catalog.processes.(src) and q = catalog.processes.(dst) in
      let cfg_p = snd catalog.topo.routers.(p.router) in
      let cfg_q = snd catalog.topo.routers.(q.router) in
      let find_neighbor_toward (x : Process.t) other_router =
        List.find_opt
          (fun (n : Ast.neighbor) ->
            match Hashtbl.find_opt catalog.addr_owner (Ipv4.to_int n.peer) with
            | Some owner -> owner = other_router
            | None -> false)
          x.ast.neighbors
      in
      let out_n = find_neighbor_toward p q.router in
      let in_n = find_neighbor_toward q p.router in
      (* for IGP adjacencies, resolve each side's interface on the link so
         interface-qualified distribute-lists apply *)
      let iface_on ri subnet =
        List.find_map
          (fun (i : Ast.interface) ->
            match i.if_address with
            | Some (addr, _) when Prefix.mem addr subnet -> Some i.if_name
            | _ -> None)
          (snd catalog.topo.routers.(ri)).interfaces
      in
      let via_p, via_q =
        match a.kind with
        | Adjacency.Igp subnet -> (iface_on p.router subnet, iface_on q.router subnet)
        | Adjacency.Ibgp | Adjacency.Ebgp -> (None, None)
      in
      let suppressed (r : Rib.route) =
        (* summary-only aggregates suppress their components on BGP
           advertisements *)
        (match a.kind with Adjacency.Igp _ -> false | Adjacency.Ibgp | Adjacency.Ebgp -> true)
        && p.protocol = Ast.Bgp
        && List.exists
             (fun (aggregate, summary_only) ->
               summary_only
               && Prefix.subset r.dest aggregate
               && not (Prefix.equal r.dest aggregate))
             p.ast.aggregates
      in
      List.iter
        (fun (r : Rib.route) ->
          if
            dlist_pass ?via_iface:via_p cfg_p p Ast.Out r
            && dlist_pass ?via_iface:via_q cfg_q q Ast.In r
            && not (suppressed r)
          then begin
            let r' =
              match a.kind with
              | Adjacency.Igp _ -> Some r (* keep internal/external flavour *)
              | Adjacency.Ibgp ->
                (* IBGP non-transitivity (RFC 4456): IBGP-learned routes
                   are only re-advertised toward route-reflector clients,
                   or when they came from a client *)
                let toward_client =
                  match out_n with Some n -> n.route_reflector_client | None -> false
                in
                if r.via_ibgp && (not r.from_client) && not toward_client then None
                else begin
                  let becomes_client_route =
                    match in_n with Some n -> n.route_reflector_client | None -> false
                  in
                  Some
                    {
                      r with
                      source = Rib.Proto (Ast.Bgp, `Internal);
                      via_ibgp = true;
                      from_client = becomes_client_route;
                    }
                end
              | Adjacency.Ebgp ->
                (* EBGP loop prevention: drop routes whose AS path already
                   contains the receiver's AS, and prepend the sender's *)
                let q_asn = q.proc_id and p_asn = p.proc_id in
                if (match q_asn with Some qa -> List.mem qa r.as_path | None -> false) then
                  None
                else
                  Some
                    {
                      r with
                      source = Rib.Proto (Ast.Bgp, `External);
                      via_ibgp = false;
                      from_client = false;
                      as_path =
                        (match p_asn with Some pa -> pa :: r.as_path | None -> r.as_path);
                    }
            in
            (* BGP sessions also apply per-neighbor policy. *)
            let passed =
              match (r', a.kind) with
              | None, _ -> None
              | Some r', Adjacency.Igp _ -> Some r'
              | Some r', (Adjacency.Ibgp | Adjacency.Ebgp) -> (
                let r' =
                  match out_n with
                  | Some n -> neighbor_pass cfg_p n Ast.Out r'
                  | None -> Some r'
                in
                match (r', in_n) with
                | None, _ -> None
                | Some r', Some n -> neighbor_pass cfg_q n Ast.In r'
                | Some r', None -> Some r')
            in
            match passed with Some r' -> add_to_proc q.pid r' | None -> ()
          end)
        (Rib.routes proc_ribs.(p.pid))
    in
    flow a.a a.b;
    flow a.b a.a
  in
  let transfer_redist (e : Process_graph.edge) =
    match (e.kind, e.dst) with
    | Process_graph.Redistribution rd, Process_graph.Proc dst -> (
      let q = catalog.processes.(dst) in
      let cfg = snd catalog.topo.routers.(q.router) in
      let source_routes =
        match e.src with
        | Process_graph.Local ri -> Rib.routes local_ribs.(ri)
        | Process_graph.Proc pid -> Rib.routes proc_ribs.(pid)
        | Process_graph.Router_rib _ -> []
      in
      List.iter
        (fun (r : Rib.route) ->
          (* redistribution strips BGP attributes — the information loss
             the paper's §6.1 discusses *)
          let r =
            {
              r with
              Rib.source = Rib.Proto (q.protocol, `External);
              as_path = [];
              via_ibgp = false;
              from_client = false;
            }
          in
          let r = match rd.route_map with
            | Some name -> route_map_pass cfg name r
            | None -> Some r
          in
          match r with
          | Some r ->
            let r = match rd.metric with Some m -> { r with Rib.metric = m } | None -> r in
            incr redist_events;
            add_to_proc dst r
          | None -> ())
        source_routes)
    | _ -> ()
  in
  (* default-information originate: an IGP process injects a default route
     when its router holds one from some other source (local static or
     another process) *)
  let originate_defaults () =
    Array.iter
      (fun (p : Process.t) ->
        if p.ast.default_originate && p.protocol <> Ast.Bgp then begin
          let router_has_default =
            Rib.find local_ribs.(p.router) Prefix.default <> None
            || List.exists
                 (fun pid ->
                   pid <> p.pid && Rib.find proc_ribs.(pid) Prefix.default <> None)
                 catalog.by_router.(p.router)
          in
          if router_has_default then
            add_to_proc p.pid (Rib.mk Prefix.default (Rib.Proto (p.protocol, `External)))
        end)
      catalog.processes
  in
  (* BGP aggregates: originate the aggregate when a strictly-more-specific
     component is present in the process RIB *)
  let originate_aggregates () =
    Array.iter
      (fun (p : Process.t) ->
        if p.protocol = Ast.Bgp then
          List.iter
            (fun (aggregate, _summary_only) ->
              let has_component =
                List.exists
                  (fun (route : Rib.route) ->
                    Prefix.subset route.dest aggregate
                    && not (Prefix.equal route.dest aggregate))
                  (Rib.routes proc_ribs.(p.pid))
              in
              if has_component then
                add_to_proc p.pid (Rib.mk aggregate (Rib.Proto (Ast.Bgp, `Internal))))
            p.ast.aggregates)
      catalog.processes
  in
  let redist_edges = Process_graph.redistribution_edges graph in
  (* The cancel poll is the non-raising kind: a tripped token exits the
     round loop exactly like an exhausted round budget, so the caller
     still gets the partial RIBs with [converged = false]. *)
  while
    !changed
    && !iterations < limits.max_propagate_iterations
    && not (Rd_util.Cancel.cancelled cancel)
  do
    changed := false;
    incr iterations;
    Rd_util.Fault.fault_point faults ~site:"propagate.fixpoint";
    List.iter transfer_adjacent graph.adjacency.adjacencies;
    List.iter transfer_redist redist_edges;
    originate_aggregates ();
    originate_defaults ()
  done;
  (* [changed] still set means the round budget cut the fixpoint short:
     a degraded (under-approximated) result, recorded rather than
     raised so callers can keep the partial RIBs. *)
  let converged = not !changed in
  (* Router RIB selection. *)
  let router_ribs =
    Array.init nrouter (fun ri ->
        let base = local_ribs.(ri) in
        List.fold_left (fun acc pid -> Rib.merge acc proc_ribs.(pid)) base catalog.by_router.(ri))
  in
  (match metrics with
   | None -> ()
   | Some _ ->
     Rd_util.Metrics.incr metrics "propagate.runs";
     Rd_util.Metrics.incr metrics ~by:!iterations "propagate.fixpoint_iterations";
     Rd_util.Metrics.incr metrics ~by:!installed "propagate.routes_installed";
     Rd_util.Metrics.incr metrics ~by:!redist_events "propagate.redistributions");
  { graph; proc_ribs; local_ribs; router_ribs; iterations = !iterations; converged }

let rib_of_process t pid = t.proc_ribs.(pid)
let rib_of_router t ri = t.router_ribs.(ri)

let process_loads t =
  let loads = Array.to_list (Array.mapi (fun pid rib -> (pid, Rib.size rib)) t.proc_ribs) in
  List.sort (fun (_, a) (_, b) -> Int.compare b a) loads

let total_routes t = Array.fold_left (fun acc rib -> acc + Rib.size rib) 0 t.proc_ribs

let instance_load t (assignment : Instance.assignment) inst_id =
  let sizes =
    List.filter_map
      (fun (pid, sz) -> if assignment.of_process.(pid) = inst_id then Some sz else None)
      (process_loads t)
  in
  match sizes with
  | [] -> (0, 0.0)
  | _ ->
    ( List.fold_left max 0 sizes,
      float_of_int (List.fold_left ( + ) 0 sizes) /. float_of_int (List.length sizes) )

let prefix_set_of_process t pid = Rib.prefixes t.proc_ribs.(pid)

let prefix_set_of_router t router = Rib.prefixes t.router_ribs.(router)

let instance_prefix_set t (assignment : Instance.assignment) inst_id =
  let inst = assignment.instances.(inst_id) in
  List.fold_left
    (fun acc pid -> Prefix_set.union acc (Rib.prefixes t.proc_ribs.(pid)))
    Prefix_set.empty inst.members

let forwards_to t ~router a = Rib.lookup t.router_ribs.(router) a

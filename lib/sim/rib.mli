(** Routes, routing information bases, and route selection (paper §2.3).

    A route is a destination prefix plus attributes.  Each routing process
    keeps its own RIB; the router RIB selects among candidate routes for
    the same prefix by administrative distance, mirroring the two-stage
    selection the paper describes. *)

open Rd_addr
open Rd_config

type source =
  | Connected
  | Static
  | Proto of Ast.protocol * [ `Internal | `External ]
      (** EBGP vs IBGP and OSPF intra vs external differ in distance. *)

type route = {
  dest : Prefix.t;
  source : source;
  metric : int;
  tag : int option;
  next_hop : Ipv4.t option;
  as_path : int list;
      (** BGP AS path, most recent AS first; [\[\]] for IGP/local routes.
          Used for EBGP loop prevention. *)
  from_client : bool;
      (** learned over an IBGP session from a route-reflector client —
          such routes may be reflected onward (RFC 4456 semantics). *)
  via_ibgp : bool;
      (** learned over an IBGP session: not re-advertised to further IBGP
          peers except by route reflection — the non-transitivity that
          forces backbones into meshes or reflectors (paper §3.1/§6.1). *)
  ad_override : int option;
      (** administrative-distance override, e.g. a floating static route
          ([ip route ... 250]). *)
}

val mk :
  ?metric:int ->
  ?tag:int option ->
  ?next_hop:Ipv4.t option ->
  ?as_path:int list ->
  ?from_client:bool ->
  ?via_ibgp:bool ->
  ?ad_override:int ->
  Prefix.t ->
  source ->
  route
(** Convenience constructor with neutral defaults. *)

val admin_distance : source -> int
(** Cisco defaults: connected 0, static 1, EBGP 20, EIGRP 90, IGRP 100,
    OSPF 110, IS-IS 115, RIP 120, EIGRP external 170, IBGP 200. *)

val effective_distance : route -> int
(** [ad_override] when present, else the source's default distance. *)

type t
(** A RIB: maps prefixes to the best route known per source. *)

val empty : t
(** The RIB with no routes. *)

val add : t -> route -> t
(** Keep the route if no better route for the same prefix is present.
    Preference: lower administrative distance, then (among BGP routes)
    shorter AS path, then lower metric. *)

val lookup : t -> Ipv4.t -> route option
(** Longest-prefix match, then best route. *)

val find : t -> Prefix.t -> route option
(** The installed route for exactly this prefix, if any. *)

val routes : t -> route list
(** All installed routes, in prefix order. *)

val size : t -> int
(** Number of installed routes (the §6.2 route-load measure). *)

val prefixes : t -> Prefix_set.t
(** The set of all installed destination prefixes. *)

val merge : t -> t -> t
(** Union keeping best routes. *)

(** Fixed-size OCaml 5 domain worker pool.

    A pool owns [jobs] worker domains that pop closures off a
    mutex/condition task queue.  The map combinators chunk the input by
    index and write results into a shared array, so output order always
    matches input order and a parallel map is observably identical to
    its sequential counterpart — only wall-clock changes.  This is what
    lets the parallel 31-network study (paper §2) promise byte-identical
    output.

    Two error disciplines are offered.  The fail-fast maps ({!map},
    {!mapi}, {!parallel_map}, {!parallel_mapi}) re-raise the first
    exception raised by the mapped function (with its backtrace) in the
    calling domain.  The supervised maps ({!map_results},
    {!mapi_results}, {!parallel_map_results}, {!parallel_mapi_results})
    isolate failures per item instead: every input produces an
    [(result, failure) result], optionally after bounded
    retry-with-backoff — the discipline the 31-network study uses so a
    single bad network cannot abort the other thirty.

    Either way the pool cannot deadlock on a failure: completion
    accounting runs in a finalizer, and a worker that catches an
    exception escaping a task (counted as [pool.task_failures]) keeps
    serving the queue.

    Worker domains are flagged via domain-local storage: a parallel map
    issued from inside a pool task runs sequentially rather than
    deadlocking on pool capacity, so nested parallelism degrades
    gracefully.

    Pools cooperate with the observability layer: pass [?trace] and/or
    [?metrics] to have every submitted task wrapped in a ["task"] span
    (category ["pool"]) and counted into [pool.tasks],
    [pool.queue_wait_ms], [pool.task_ms], [pool.workers], and
    [pool.utilization]; retries bump [task.retried].  Pass [?faults] to
    arm the ["pool.pickup"] {!Fault} site, which fires between task
    pickup and execution — the chaos suite's stand-in for a worker dying
    mid-task.  Workers flush their domain-local {!Trace} buffers before
    exiting, so spans recorded inside tasks always survive the pool
    join. *)

type t
(** A running pool of worker domains. *)

val default_jobs : unit -> int
(** The [RDNA_JOBS] environment variable if set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]. *)

val in_worker : unit -> bool
(** [true] when called from inside a pool worker domain. *)

val create : ?jobs:int -> ?trace:Trace.t -> ?metrics:Metrics.t -> ?faults:Fault.t -> unit -> t
(** [create ~jobs ()] spawns [max 1 jobs] worker domains
    (default {!default_jobs}).  [?trace] and [?metrics] attach an
    observability recorder/registry to every task run on the pool;
    [?faults] arms the pool's injection sites. *)

val jobs : t -> int
(** Number of worker domains. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue a task.  A raw task that raises is dropped (its exception
    counted as [pool.task_failures]); the worker survives and keeps
    serving the queue.  Raises [Invalid_argument] after {!shutdown}. *)

val shutdown : t -> unit
(** Drain the queue, stop and join all workers, then publish the
    [pool.workers] and [pool.utilization] gauges when a metrics
    registry is attached.  Idempotent. *)

val with_pool :
  ?jobs:int -> ?trace:Trace.t -> ?metrics:Metrics.t -> ?faults:Fault.t -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and always shuts it down. *)

(** {1 Fail-fast maps} *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map on an existing pool.  Falls back to
    [List.map] when the pool has one worker, the list has at most one
    element, or the caller is itself a pool worker. *)

val mapi : t -> (int -> 'a -> 'b) -> 'a list -> 'b list

val parallel_map :
  ?jobs:int -> ?trace:Trace.t -> ?metrics:Metrics.t -> ?faults:Fault.t ->
  ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: create a pool, {!map}, shut down.  [~jobs:1]
    (or a singleton/empty list, or a nested call) short-circuits to
    [List.map] without spawning any domain. *)

val parallel_mapi :
  ?jobs:int -> ?trace:Trace.t -> ?metrics:Metrics.t -> ?faults:Fault.t ->
  (int -> 'a -> 'b) -> 'a list -> 'b list

(** {1 Supervised maps} *)

type cause =
  | Exn  (** an ordinary exception. *)
  | Fault of string  (** an injected {!Fault} fired at this site. *)
  | Budget of string  (** a {!Limits} budget tripped at this site. *)
  | Timed_out of Cancel.reason
      (** a {!Cancel} token tripped — deadline expiry or explicit stop.
          Timed-out items are never retried: the deadline stays expired,
          so a retry could only burn budget re-reaching the poll. *)

(** Classification of the terminal exception of a failed item. *)

type failure = {
  exn : exn;  (** the terminal exception, after any retries. *)
  backtrace : string;  (** its backtrace (empty when recording is off). *)
  site : string option;
      (** the {!Fault}/{!Limits}/{!Cancel} site that produced it, when
          known. *)
  cause : cause;  (** what kind of failure this was. *)
  attempts : int;  (** how many times the item was tried. *)
  elapsed : float;  (** seconds spent on the item across all attempts. *)
}
(** Why one input item failed. *)

val map_results :
  ?retries:int -> ?backoff:float -> ?cancel:Cancel.t -> t -> ('a -> 'b) -> 'a list ->
  ('b, failure) result list
(** Order-preserving supervised map: every input yields [Ok] or a
    {!failure}; an exception in one item never affects the others.
    [retries] (default 0) re-runs a failed item up to that many extra
    times with exponential backoff ([backoff * 2{^attempt-1}] seconds,
    default 0), counting [task.retried].  On a pool the backoff never
    blocks a worker: the item is requeued with a not-before time and
    the domain keeps serving other items.  [cancel] is polled (site
    ["pool.queued"]) before each item attempt, so once the token trips
    every not-yet-started item fails fast with a {!Timed_out} failure
    instead of running — the pool drains at poll speed. *)

val mapi_results :
  ?retries:int -> ?backoff:float -> ?cancel:Cancel.t -> t -> (int -> 'a -> 'b) -> 'a list ->
  ('b, failure) result list

val parallel_map_results :
  ?jobs:int -> ?trace:Trace.t -> ?metrics:Metrics.t -> ?faults:Fault.t ->
  ?cancel:Cancel.t -> ?retries:int -> ?backoff:float -> ('a -> 'b) -> 'a list ->
  ('b, failure) result list
(** One-shot supervised map: create a pool, {!map_results}, shut down,
    with the same sequential short-circuits as {!parallel_map}. *)

val parallel_mapi_results :
  ?jobs:int -> ?trace:Trace.t -> ?metrics:Metrics.t -> ?faults:Fault.t ->
  ?cancel:Cancel.t -> ?retries:int -> ?backoff:float -> (int -> 'a -> 'b) -> 'a list ->
  ('b, failure) result list

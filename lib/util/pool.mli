(** Fixed-size OCaml 5 domain worker pool.

    A pool owns [jobs] worker domains that pop closures off a
    mutex/condition task queue.  The map combinators chunk the input by
    index and write results into a shared array, so output order always
    matches input order and a parallel map is observably identical to
    its sequential counterpart — only wall-clock changes.  This is what
    lets the parallel 31-network study (paper §2) promise byte-identical
    output.  The first exception raised by the mapped function is
    re-raised (with its backtrace) in the calling domain.

    Worker domains are flagged via domain-local storage: a parallel map
    issued from inside a pool task runs sequentially rather than
    deadlocking on pool capacity, so nested parallelism degrades
    gracefully.

    Pools cooperate with the observability layer: pass [?trace] and/or
    [?metrics] to have every submitted task wrapped in a ["task"] span
    (category ["pool"]) and counted into [pool.tasks],
    [pool.queue_wait_ms], [pool.task_ms], [pool.workers], and
    [pool.utilization].  Workers flush their domain-local {!Trace}
    buffers before exiting, so spans recorded inside tasks always
    survive the pool join. *)

type t
(** A running pool of worker domains. *)

val default_jobs : unit -> int
(** The [RDNA_JOBS] environment variable if set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]. *)

val in_worker : unit -> bool
(** [true] when called from inside a pool worker domain. *)

val create : ?jobs:int -> ?trace:Trace.t -> ?metrics:Metrics.t -> unit -> t
(** [create ~jobs ()] spawns [max 1 jobs] worker domains
    (default {!default_jobs}).  [?trace] and [?metrics] attach an
    observability recorder/registry to every task run on the pool. *)

val jobs : t -> int
(** Number of worker domains. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue a task.  Tasks must not raise (the map combinators wrap
    user functions; a raising raw task is silently dropped with its
    worker).  Raises [Invalid_argument] after {!shutdown}. *)

val shutdown : t -> unit
(** Drain the queue, stop and join all workers, then publish the
    [pool.workers] and [pool.utilization] gauges when a metrics
    registry is attached.  Idempotent. *)

val with_pool : ?jobs:int -> ?trace:Trace.t -> ?metrics:Metrics.t -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and always shuts it down. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map on an existing pool.  Falls back to
    [List.map] when the pool has one worker, the list has at most one
    element, or the caller is itself a pool worker. *)

val mapi : t -> (int -> 'a -> 'b) -> 'a list -> 'b list

val parallel_map :
  ?jobs:int -> ?trace:Trace.t -> ?metrics:Metrics.t -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: create a pool, {!map}, shut down.  [~jobs:1]
    (or a singleton/empty list, or a nested call) short-circuits to
    [List.map] without spawning any domain. *)

val parallel_mapi :
  ?jobs:int -> ?trace:Trace.t -> ?metrics:Metrics.t -> (int -> 'a -> 'b) -> 'a list -> 'b list

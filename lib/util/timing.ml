(* Wall-clock stage timing.

   A recorder accumulates (total seconds, span count) per named stage
   behind a mutex, so spans from concurrent pool workers interleave
   safely.  Stages render in first-seen order. *)

type cell = { mutable total : float; mutable count : int }

type t = {
  mutex : Mutex.t;
  cells : (string, cell) Hashtbl.t;
  mutable order : string list; (* reverse first-seen order *)
}

let create () = { mutex = Mutex.create (); cells = Hashtbl.create 16; order = [] }

let now () = Unix.gettimeofday ()

let add t stage seconds =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.cells stage with
      | Some c ->
        c.total <- c.total +. seconds;
        c.count <- c.count + 1
      | None ->
        Hashtbl.add t.cells stage { total = seconds; count = 1 };
        t.order <- stage :: t.order)

let span t stage f =
  let t0 = now () in
  Fun.protect ~finally:(fun () -> add t stage (now () -. t0)) f

let stages t =
  Mutex.protect t.mutex (fun () ->
      List.rev_map
        (fun stage ->
          let c = Hashtbl.find t.cells stage in
          (stage, c.total, c.count))
        t.order)

let total t = List.fold_left (fun acc (_, s, _) -> acc +. s) 0.0 (stages t)

let reset t =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.reset t.cells;
      t.order <- [])

let render t =
  match stages t with
  | [] -> "(no stages recorded)\n"
  | sts ->
    let rows =
      List.map
        (fun (stage, s, n) ->
          [ stage; Printf.sprintf "%.3f" s; string_of_int n ])
        sts
      @ [ [ "total"; Printf.sprintf "%.3f" (total t); "" ] ]
    in
    Table.render ~headers:[ "stage"; "seconds"; "spans" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right ]
      rows

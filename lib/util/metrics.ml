(* Counter/gauge/histogram registry behind one mutex.

   Updates are short critical sections (a hashtable probe and a couple of
   field writes), so sharing the registry across pool workers is cheap;
   the callers that could contend (per-line parser counters) batch their
   bumps per file instead of per line. *)

type histo_cell = {
  bounds : float array;
  counts : int array; (* length = Array.length bounds + 1; last = overflow *)
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

type cell = Counter of int ref | Gauge of float ref | Histogram of histo_cell

type t = { mutex : Mutex.t; cells : (string, cell) Hashtbl.t }

let create () = { mutex = Mutex.create (); cells = Hashtbl.create 32 }

let kind_name = function Counter _ -> "counter" | Gauge _ -> "gauge" | Histogram _ -> "histogram"

let with_cell t name mk use =
  Mutex.protect t.mutex (fun () ->
      let c =
        match Hashtbl.find_opt t.cells name with
        | Some c -> c
        | None ->
          let c = mk () in
          Hashtbl.add t.cells name c;
          c
      in
      use c)

let wrong_kind op name c =
  invalid_arg (Printf.sprintf "Metrics.%s: %s is a %s" op name (kind_name c))

let incr ?(by = 1) t name =
  match t with
  | None -> ()
  | Some t ->
    with_cell t name
      (fun () -> Counter (ref 0))
      (function Counter r -> r := !r + by | c -> wrong_kind "incr" name c)

let set t name v =
  match t with
  | None -> ()
  | Some t ->
    with_cell t name
      (fun () -> Gauge (ref 0.0))
      (function Gauge r -> r := v | c -> wrong_kind "set" name c)

let default_buckets = [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 2000.; 5000.; 10000. |]

let observe ?(buckets = default_buckets) t name v =
  match t with
  | None -> ()
  | Some t ->
    with_cell t name
      (fun () ->
        Histogram
          {
            bounds = Array.copy buckets;
            counts = Array.make (Array.length buckets + 1) 0;
            count = 0;
            sum = 0.0;
            vmin = Float.nan;
            vmax = Float.nan;
          })
      (function
        | Histogram h ->
          let n = Array.length h.bounds in
          let rec idx i = if i >= n || v <= h.bounds.(i) then i else idx (i + 1) in
          let i = idx 0 in
          h.counts.(i) <- h.counts.(i) + 1;
          h.count <- h.count + 1;
          h.sum <- h.sum +. v;
          if h.count = 1 then begin
            h.vmin <- v;
            h.vmax <- v
          end
          else begin
            if v < h.vmin then h.vmin <- v;
            if v > h.vmax then h.vmax <- v
          end
        | c -> wrong_kind "observe" name c)

type histogram = {
  buckets : (float * int) list;
  overflow : int;
  count : int;
  sum : float;
  min : float;
  max : float;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram) list;
}

let freeze_histo (h : histo_cell) =
  {
    buckets = Array.to_list (Array.mapi (fun i b -> (b, h.counts.(i))) h.bounds);
    overflow = h.counts.(Array.length h.bounds);
    count = h.count;
    sum = h.sum;
    min = h.vmin;
    max = h.vmax;
  }

let snapshot t =
  Mutex.protect t.mutex (fun () ->
      let counters = ref [] and gauges = ref [] and histograms = ref [] in
      Hashtbl.iter
        (fun name -> function
          | Counter r -> counters := (name, !r) :: !counters
          | Gauge r -> gauges := (name, !r) :: !gauges
          | Histogram h -> histograms := (name, freeze_histo h) :: !histograms)
        t.cells;
      let by_name (a, _) (b, _) = String.compare a b in
      {
        counters = List.sort by_name !counters;
        gauges = List.sort by_name !gauges;
        histograms = List.sort by_name !histograms;
      })

let counter_value t name =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.cells name with Some (Counter r) -> Some !r | _ -> None)

let find_histogram t name =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.cells name with
      | Some (Histogram h) -> Some (freeze_histo h)
      | _ -> None)

let render t =
  let s = snapshot t in
  let buf = Buffer.create 512 in
  if s.counters <> [] then begin
    Buffer.add_string buf
      (Table.render ~headers:[ "counter"; "value" ]
         ~aligns:[ Table.Left; Table.Right ]
         (List.map (fun (n, v) -> [ n; string_of_int v ]) s.counters));
    Buffer.add_char buf '\n'
  end;
  if s.gauges <> [] then begin
    Buffer.add_string buf
      (Table.render ~headers:[ "gauge"; "value" ]
         ~aligns:[ Table.Left; Table.Right ]
         (List.map (fun (n, v) -> [ n; Printf.sprintf "%.3f" v ]) s.gauges));
    Buffer.add_char buf '\n'
  end;
  if s.histograms <> [] then begin
    Buffer.add_string buf
      (Table.render
         ~headers:[ "histogram"; "count"; "sum"; "min"; "mean"; "max" ]
         ~aligns:
           [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
         (List.map
            (fun (n, h) ->
              let num f = if Float.is_nan f then "-" else Printf.sprintf "%.2f" f in
              [
                n;
                string_of_int h.count;
                num h.sum;
                num h.min;
                num (if h.count = 0 then Float.nan else h.sum /. float_of_int h.count);
                num h.max;
              ])
            s.histograms));
    Buffer.add_char buf '\n'
  end;
  if Buffer.length buf = 0 then "(no metrics recorded)\n" else Buffer.contents buf

let to_json t =
  let s = snapshot t in
  let histo_json (h : histogram) =
    Json.Obj
      [
        ("count", Json.Int h.count);
        ("sum", Json.Float h.sum);
        ("min", Json.Float h.min);
        ("max", Json.Float h.max);
        ( "buckets",
          Json.List
            (List.map (fun (le, n) -> Json.Obj [ ("le", Json.Float le); ("n", Json.Int n) ]) h.buckets
             @ [ Json.Obj [ ("le", Json.Null); ("n", Json.Int h.overflow) ] ]) );
      ]
  in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.counters));
      ("gauges", Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) s.gauges));
      ("histograms", Json.Obj (List.map (fun (n, h) -> (n, histo_json h)) s.histograms));
    ]

let reset t = Mutex.protect t.mutex (fun () -> Hashtbl.reset t.cells)

(** Summary statistics over float and int samples. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val median : float list -> float
(** Median (average of middle two for even length); 0 on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,100\]], nearest-rank on the sorted
    sample; 0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val imean : int list -> float
(** {!mean} over integer samples. *)

val imedian : int list -> float
(** {!median} over integer samples. *)

val imin : int list -> int
(** Smallest element; 0 on the empty list. *)

val imax : int list -> int
(** Largest element; 0 on the empty list. *)

val histogram : edges:float list -> float list -> int array
(** [histogram ~edges xs] counts samples per bucket.  With [edges]
    [\[e1; …; ek\]] the buckets are (-inf, e1], (e1, e2], …, (ek, +inf):
    [k+1] counts. *)

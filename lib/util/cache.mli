(** Content-addressed analysis cache.

    The paper's central observation is that operators evolve routing
    designs {e incrementally} (§8): a maintenance scenario, a new filter,
    or a decommissioned router is a small delta against an otherwise
    stable network.  The what-if engine therefore memoizes expensive
    pipeline artifacts — parsed configurations, full analyses, static
    reachability fixpoints — in content-addressed stores, so that the
    unchanged majority of a design sweep is a cache probe rather than a
    recomputation.

    A store maps a {!type:key} — a SHA-1 digest ({!Sha1}) of the input
    bytes together with a stage name and stage version — to an arbitrary
    cached value.  Because the key is derived from content, not identity,
    a hit is exact: same bytes, same stage, same version.  Bumping a
    stage's version constant invalidates every entry of that stage at
    once (the rule used when an analysis stage's semantics change).

    Stores are process-local by default (attach a durable {!Store}
    backend via {!create} to persist across runs) and
    domain-safe: lookups and insertions take a per-store mutex, while
    {!find_or_add} computes misses {e outside} the lock, so concurrent
    workers never serialize on a slow computation (a duplicated race
    computation is tolerated; last writer wins, values are assumed
    deterministic for their key).

    Activity is observable in the spirit of {!Trace}/{!Metrics}: every
    lookup can bump [cache.<name>.hits]/[.misses] counters, insertions
    maintain a [cache.<name>.entries] gauge, and {!find_or_add} wraps
    miss computations in a [cache.miss] span. *)

type key
(** A content-addressed cache key (a 20-byte SHA-1 digest). *)

val key : stage:string -> version:int -> string list -> key
(** [key ~stage ~version parts] digests the stage name, the stage
    version, and each part with unambiguous length framing: two part
    lists collide only if they are element-wise identical.  [parts] is
    typically the raw configuration bytes of a network (file names and
    contents), possibly followed by scenario or offer encodings. *)

val key_of_keys : stage:string -> version:int -> key list -> key
(** Derive a compound key from previously computed keys — e.g. a
    reachability key from an analysis key plus an external-offer key —
    without re-digesting the underlying bytes. *)

val hex : key -> string
(** Lowercase 40-character hexadecimal rendering (for reports and
    JSON). *)

val raw : key -> Store.key
(** The raw 20-byte digest — the {!Store} key under which a durable
    entry derived from this cache key lives (checkpoint payloads use
    exactly this bridge). *)

type 'a t
(** A mutable, domain-safe content-addressed store of ['a] values. *)

type 'a codec = { encode : 'a -> string; decode : string -> 'a option }
(** Serialization for the durable backend.  [decode] returns [None] on
    any malformed payload (it must never raise): the entry is treated
    as a miss, the same policy the {!Store} applies to corrupt
    frames. *)

val create : ?capacity:int -> ?durable:Store.t * 'a codec -> name:string -> unit -> 'a t
(** A fresh store.  [name] labels the store's metrics counters and
    spans.  [capacity] (default 256 entries) bounds memory: inserting
    into a full store runs a segmented second-chance sweep — entries
    not looked up since the previous sweep are evicted first (counted
    as [cache.<name>.evictions]), hot entries survive demoted, and the
    table is cut to half capacity — so a capacity hit during a warm
    what-if sweep keeps the working set instead of discarding it.

    [durable] chains an on-disk {!Store} behind the memory table:
    {!add} writes through (encoded by the codec), and a memory miss
    probes the store, re-admitting a verified entry as a hit.  This is
    what makes an {!Rd_core.Engine} cache survive a process restart
    under [--checkpoint]/[--resume]. *)

val name : 'a t -> string

val find : ?metrics:Metrics.t -> 'a t -> key -> 'a option
(** Probe the store (memory first, then the durable backend when one is
    attached).  Bumps [cache.<name>.hits] or [cache.<name>.misses]; a
    durable restore counts as a hit and re-enters the memory table. *)

val add : ?metrics:Metrics.t -> 'a t -> key -> 'a -> unit
(** Insert (replacing any previous value for the key), evicting first
    when at capacity and writing through to the durable backend when
    one is attached.  Updates the [cache.<name>.entries] gauge. *)

val find_or_add :
  ?metrics:Metrics.t -> ?trace:Trace.t -> 'a t -> key -> (unit -> 'a) -> 'a
(** [find_or_add c k f] returns the cached value for [k], computing and
    inserting [f ()] on a miss.  [f] runs outside the store lock, inside
    a [cache.miss] span (category ["cache"], with the store name and key
    as span arguments) when [trace] is given. *)

val invalidate : ?metrics:Metrics.t -> 'a t -> key -> unit
(** Drop one entry (a no-op when absent).  Bumps
    [cache.<name>.invalidations] when an entry was dropped. *)

val clear : ?metrics:Metrics.t -> 'a t -> unit
(** Drop every entry, bumping [cache.<name>.invalidations] by the number
    dropped. *)

val length : 'a t -> int

type stats = { hits : int; misses : int; evictions : int; invalidations : int }
(** Cumulative per-store counters since {!create} — maintained even when
    no {!Metrics} registry is supplied, so library code can assert cache
    behaviour without threading a registry. *)

val stats : 'a t -> stats

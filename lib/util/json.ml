(* Minimal JSON emission and parsing (no dependencies).

   Just enough to write benchmark, trace and metrics records that
   standard tooling can consume — correct string escaping, finite-float
   handling (NaN/infinity become null — JSON has no spelling for them) —
   and to read them back for validation in tests and CI. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null" else Printf.sprintf "%.12g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ", ";
        emit buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        escape buf k;
        Buffer.add_string buf ": ";
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

let to_channel oc v =
  output_string oc (to_string v);
  output_char oc '\n'

let to_file path v =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc v)

(* --- parsing ------------------------------------------------------------ *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some c -> c
    | None -> fail "bad \\u escape"
  in
  (* Encode a Unicode scalar value as UTF-8 (surrogate pairs are combined
     by the caller). *)
  let add_utf8 buf c =
    if c < 0x80 then Buffer.add_char buf (Char.chr c)
    else if c < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (c lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3f)))
    end
    else if c < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (c lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (c lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= n then fail "truncated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
           let c1 = hex4 () in
           if c1 >= 0xd800 && c1 <= 0xdbff then begin
             if !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u' then begin
               pos := !pos + 2;
               let c2 = hex4 () in
               if c2 >= 0xdc00 && c2 <= 0xdfff then
                 add_utf8 buf (0x10000 + ((c1 - 0xd800) lsl 10) + (c2 - 0xdc00))
               else fail "unpaired surrogate"
             end
             else fail "unpaired surrogate"
           end
           else if c1 >= 0xdc00 && c1 <= 0xdfff then fail "unpaired surrogate"
           else add_utf8 buf c1
         | _ -> fail "bad escape");
        go ())
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit in
    if is_float then
      match float_of_string_opt lit with Some f -> Float f | None -> fail "bad number"
    else begin
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
        (* out of int range: fall back to float *)
        match float_of_string_opt lit with Some f -> Float f | None -> fail "bad number")
    end
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        items []
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          (k, parse_value ())
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (kv :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev (kv :: acc))
          | _ -> fail "expected , or }"
        in
        fields []
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (p, msg) -> Error (Printf.sprintf "at offset %d: %s" p msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that
    experiments are reproducible bit-for-bit from a seed.  The generator is
    splitmix64 (Steele, Lea, Flood 2014): a tiny, fast, well-distributed
    64-bit generator that supports cheap stream splitting. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val copy : t -> t
(** [copy t] duplicates the state; the copy evolves independently. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator and
    advances [t].  Use to give sub-tasks their own streams. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  Requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.  Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choice_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val weighted : t -> (float * 'a) list -> 'a
(** [weighted t choices] picks proportionally to the non-negative weights.
    Requires at least one strictly positive weight. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs] draws [min k (length xs)] distinct elements, preserving
    no particular order. *)

val pareto_int : t -> alpha:float -> xmin:int -> int
(** Heavy-tailed integer sample: discretized Pareto with shape [alpha] and
    minimum [xmin].  Used for realistic size distributions. *)

(* Seeded fault injection.

   Decisions hash (seed, clause index, site, key, nth-call-for-that-
   site-and-key) through FNV-1a + a splitmix64 finalizer, so they depend
   only on the plan and the logical work item — not on domain scheduling.
   All mutable state (per-clause call/fire counters, the fire log) lives
   behind one mutex so fault points are safe from pool workers. *)

type kind = Raise | Delay of float | Corrupt

exception Injected of string * string option

let () =
  Printexc.register_printer (function
    | Injected (site, None) -> Some (Printf.sprintf "injected fault at %s" site)
    | Injected (site, Some key) -> Some (Printf.sprintf "injected fault at %s [%s]" site key)
    | _ -> None)

type clause = {
  c_site : string;
  c_kind : kind;
  c_key : string option;
  c_p : float;
  c_max : int option;
}

type injection = { i_site : string; i_key : string option; i_kind : kind }

type t = {
  seed : int;
  clauses : clause array;
  mutex : Mutex.t;
  calls : (int * string, int) Hashtbl.t; (* (clause, key) -> matching calls *)
  fired : (int * string, int) Hashtbl.t; (* (clause, key) -> fires *)
  mutable log : injection list; (* newest first *)
  mutable metrics : Metrics.t option;
}

let seed t = t.seed

let set_metrics t m = Mutex.protect t.mutex (fun () -> t.metrics <- m)

(* ------------------------------------------------------- spec parsing --- *)

let parse_clause part =
  match String.split_on_char ':' part with
  | [] | [ "" ] -> Error (Printf.sprintf "fault clause %S: empty" part)
  | site :: fields when site <> "" ->
    let kind = ref None and key = ref None and p = ref 1.0 and max_fires = ref None in
    let err = ref None in
    let fail fmt = Printf.ksprintf (fun m -> if !err = None then err := Some m) fmt in
    let set_kind k =
      match !kind with
      | None -> kind := Some k
      | Some _ -> fail "fault clause %S: more than one kind" part
    in
    List.iter
      (fun field ->
        match String.index_opt field '=' with
        | None when field = "raise" -> set_kind Raise
        | None when field = "corrupt" -> set_kind Corrupt
        | None -> fail "fault clause %S: unknown field %S" part field
        | Some i -> (
          let name = String.sub field 0 i in
          let value = String.sub field (i + 1) (String.length field - i - 1) in
          match name with
          | "delay" -> (
            match float_of_string_opt value with
            | Some ms when ms >= 0.0 -> set_kind (Delay ms)
            | _ -> fail "fault clause %S: bad delay %S (milliseconds)" part value)
          | "p" -> (
            match float_of_string_opt value with
            | Some f when f >= 0.0 && f <= 1.0 -> p := f
            | _ -> fail "fault clause %S: bad probability %S" part value)
          | "key" -> key := Some value
          | "max" -> (
            match int_of_string_opt value with
            | Some n when n >= 0 -> max_fires := Some n
            | _ -> fail "fault clause %S: bad max %S" part value)
          | _ -> fail "fault clause %S: unknown field %S" part name))
      fields;
    (match (!err, !kind) with
     | Some m, _ -> Error m
     | None, None -> Error (Printf.sprintf "fault clause %S: missing kind (raise|corrupt|delay=MS)" part)
     | None, Some k ->
       Ok { c_site = site; c_kind = k; c_key = !key; c_p = !p; c_max = !max_fires })
  | _ -> Error (Printf.sprintf "fault clause %S: missing site" part)

let of_spec spec =
  let parts =
    String.split_on_char ';' spec |> List.map String.trim |> List.filter (fun s -> s <> "")
  in
  let rec go seed clauses = function
    | [] ->
      if clauses = [] then Error "fault spec: no clauses"
      else
        Ok
          {
            seed;
            clauses = Array.of_list (List.rev clauses);
            mutex = Mutex.create ();
            calls = Hashtbl.create 16;
            fired = Hashtbl.create 16;
            log = [];
            metrics = None;
          }
    | part :: rest when String.length part > 5 && String.sub part 0 5 = "seed=" -> (
      match int_of_string_opt (String.sub part 5 (String.length part - 5)) with
      | Some s -> go s clauses rest
      | None -> Error (Printf.sprintf "fault spec: bad seed %S" part))
    | part :: rest -> (
      match parse_clause part with
      | Ok c -> go seed (c :: clauses) rest
      | Error _ as e -> e)
  in
  go 0 [] parts

let from_env () =
  match Sys.getenv_opt "RDNA_FAULTS" with
  | None -> Ok None
  | Some s when String.trim s = "" -> Ok None
  | Some s -> ( match of_spec s with Ok t -> Ok (Some t) | Error e -> Error e)

(* ------------------------------------------------------------ decision --- *)

let fnv64 s =
  let p = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) p) s;
  !h

let splitmix64 x =
  let open Int64 in
  let x = add x 0x9E3779B97F4A7C15L in
  let x = mul (logxor x (shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94D049BB133111EBL in
  logxor x (shift_right_logical x 31)

(* Uniform in [0,1) from the decision's identity. *)
let roll ~seed ~clause ~site ~key n =
  let h = splitmix64 (fnv64 (Printf.sprintf "%d|%d|%s|%s|%d" seed clause site key n)) in
  let bits = Int64.to_int (Int64.shift_right_logical h 11) in
  float_of_int bits /. 9007199254740992.0 (* 2^53 *)

let site_matches ~clause_site ~site =
  String.equal clause_site site
  || String.starts_with ~prefix:(clause_site ^ ".") site

(* The first matching clause of an accepted kind that passes its max and
   probability checks wins; its fire is logged and counted. *)
let decide t ~site ~key accepts =
  Mutex.protect t.mutex (fun () ->
      let keystr = Option.value key ~default:"" in
      let n = Array.length t.clauses in
      let rec go i =
        if i >= n then None
        else begin
          let c = t.clauses.(i) in
          if
            accepts c.c_kind
            && site_matches ~clause_site:c.c_site ~site
            && (match c.c_key with None -> true | Some k -> Some k = key)
          then begin
            let id = (i, keystr) in
            let calls = 1 + Option.value (Hashtbl.find_opt t.calls id) ~default:0 in
            Hashtbl.replace t.calls id calls;
            let fires = Option.value (Hashtbl.find_opt t.fired id) ~default:0 in
            let under_max = match c.c_max with None -> true | Some m -> fires < m in
            let fire =
              under_max
              && (c.c_p >= 1.0 || roll ~seed:t.seed ~clause:i ~site ~key:keystr calls < c.c_p)
            in
            if fire then begin
              Hashtbl.replace t.fired id (fires + 1);
              t.log <- { i_site = site; i_key = key; i_kind = c.c_kind } :: t.log;
              Metrics.incr t.metrics "fault.injected";
              Some c.c_kind
            end
            else go (i + 1)
          end
          else go (i + 1)
        end
      in
      go 0)

let fault_point ?key t ~site =
  match t with
  | None -> ()
  | Some t -> (
    match decide t ~site ~key (function Raise | Delay _ -> true | Corrupt -> false) with
    | None | Some Corrupt -> ()
    | Some Raise -> raise (Injected (site, key))
    | Some (Delay ms) -> Unix.sleepf (ms /. 1000.0))

let corrupt ?key t ~site text =
  match t with
  | None -> text
  | Some t -> (
    match decide t ~site ~key (function Corrupt -> true | _ -> false) with
    | None -> text
    | Some _ ->
      let n = String.length text in
      if n = 0 then text
      else begin
        let keystr = Option.value key ~default:"" in
        let rng =
          Prng.create
            (Int64.to_int (splitmix64 (fnv64 (Printf.sprintf "%d|corrupt|%s|%s" t.seed site keystr))))
        in
        let b = Bytes.of_string text in
        (* Overwrite ~1.5% of the bytes (at least 8) with printable noise:
           enough to mangle commands, small enough that most of the file
           still parses. *)
        let hits = max 8 (n / 64) in
        for _ = 1 to hits do
          Bytes.set b (Prng.int rng n) (Char.chr (33 + Prng.int rng 94))
        done;
        Bytes.to_string b
      end)

let injections t = Mutex.protect t.mutex (fun () -> List.rev t.log)

let site_of_exn = function Injected (site, _) -> Some site | _ -> None

(** Durable on-disk content-addressed store.

    One directory, one file per entry, named by the hex of the entry's
    {!Cache.key}.  This is the persistence backend behind
    [--checkpoint DIR]/[--resume]: completed per-network results are
    written as they finish and found again by a later process.

    Durability discipline (DESIGN.md §15):
    - writes go to a temp file in the same directory, are flushed and
      fsynced, then renamed into place — a reader never observes a
      half-written entry, and a crash mid-write leaves only a temp file
      that is ignored;
    - every entry is framed (magic, payload length, payload SHA-1) and
      verified on read — a corrupt or truncated entry is a logged miss
      (the [store.corrupt] counter) and is never trusted, never fatal.

    A store never raises on read: any I/O or integrity problem
    degrades to [None].  [add] failures (disk full, permissions) are
    likewise swallowed after counting — a checkpoint that cannot be
    written must not take down the analysis it was meant to protect. *)

type t

type key = string
(** A raw key, typically a 20-byte SHA-1 digest ({!Cache.key} keys are
    exactly this).  Entry file names are the hex of the key. *)

val open_dir : ?metrics:Metrics.t -> string -> t
(** Open (creating if needed) the store rooted at a directory.
    Raises [Sys_error] only when the directory cannot be created at
    all — after that, per-entry problems never escape. *)

val dir : t -> string
(** The backing directory. *)

val find : t -> key -> string option
(** Verified payload of an entry, [None] on absent/corrupt/truncated. *)

val mem : t -> key -> bool
(** Does a verified entry exist?  (Reads and checks the frame.) *)

val add : t -> key -> string -> unit
(** Durably persist a payload under a key (write-temp-fsync-rename).
    Overwrites any previous entry atomically. *)

val entry_path : t -> key -> string
(** Where an entry lives on disk — exposed so tests and smoke scripts
    can corrupt entries deliberately. *)

type stats = { hits : int; misses : int; writes : int; corrupt : int }

val stats : t -> stats
(** Counters since {!open_dir}; [corrupt] entries are also counted as
    misses.  Mirrored to metrics as [store.hits] / [store.misses] /
    [store.writes] / [store.corrupt]. *)

val render_stats : t -> string
(** One-line human rendering, e.g.
    ["checkpoint store: 14 hits, 17 misses (1 corrupt), 17 writes"]. *)

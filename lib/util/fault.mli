(** Deterministic, seeded fault injection for chaos testing.

    The pipeline only earns its robustness claims if faults can be
    driven through it on demand: the chaos suite injects raises, byte
    corruption, and delays at named {e sites} inside the parser, the
    analysis stages, the worker pool, and the fixpoint loops, then
    asserts that the run completes, that untouched networks are
    byte-identical to a clean run, and that every injected fault is
    reported exactly once.

    Instrumented code marks each site with {!fault_point} (and byte
    pipelines with {!corrupt}).  Both take a [t option] and compile to
    no-ops on [None] — the same convention as {!Trace} and {!Metrics} —
    so clean runs stay byte-identical to an uninstrumented build.

    {2 Determinism}

    A plan is built from a textual spec (see {!of_spec}) whose [seed]
    fixes every decision.  A clause fires based only on the seed, the
    clause, the site, the call's [key], and how many times that
    (site, key) pair has been seen — never on wall-clock time or domain
    scheduling — so a given spec injects the same faults into the same
    work items on every run, even under a parallel pool, provided each
    logical work item passes a distinguishing [key] (the study uses
    network labels and ["<network>/<file>"] names).

    {2 Spec grammar}

    Clauses are separated by [;]:
    {v
    spec   ::= part (';' part)*
    part   ::= 'seed=' INT | clause
    clause ::= SITE ':' KIND (':' option)*
    KIND   ::= 'raise' | 'corrupt' | 'delay=' MILLISECONDS
    option ::= 'p=' FLOAT | 'key=' STRING | 'max=' INT
    v}
    A clause matches a call when its [SITE] equals the call's site or is
    a dotted prefix of it ([analysis] matches [analysis.blocks]), and its
    [key=] (if any) equals the call's key.  [p] is the fire probability
    (default 1); [max] caps fires per (site, key).  Example:
    [seed=7;study.network:raise:key=net4;parse.bytes:corrupt:p=0.01]. *)

type kind =
  | Raise  (** raise {!Injected} at the fault point. *)
  | Delay of float  (** sleep this many milliseconds at the fault point. *)
  | Corrupt  (** mangle the bytes passed to {!corrupt}. *)

exception Injected of string * string option
(** [Injected (site, key)], raised by a firing [raise] clause.  A
    printer is registered, so [Printexc.to_string] yields the stable
    one-liner ["injected fault at <site> [<key>]"]. *)

type t
(** A fault-injection plan: parsed clauses plus the mutable (mutex-
    protected, domain-safe) call counters and fire log. *)

val of_spec : string -> (t, string) result
(** Parse a spec (grammar above) into a plan.  [Error] carries a
    human-readable description of the first malformed clause. *)

val from_env : unit -> (t option, string) result
(** [of_spec] applied to the [RDNA_FAULTS] environment variable;
    [Ok None] when the variable is unset or empty. *)

val seed : t -> int
(** The plan's seed (0 when the spec did not set one). *)

val set_metrics : t -> Metrics.t option -> unit
(** Attach a registry: every subsequent fire bumps the [fault.injected]
    counter. *)

val fault_point : ?key:string -> t option -> site:string -> unit
(** Mark an injection site.  On [None] (faults disabled) this is a
    no-op.  Otherwise the first matching, firing clause acts: [raise]
    raises {!Injected}, [delay] sleeps; [corrupt] clauses never fire
    here (they only act through {!corrupt}). *)

val corrupt : ?key:string -> t option -> site:string -> string -> string
(** [corrupt t ~site text] returns [text] unchanged unless a [corrupt]
    clause fires for (site, key), in which case a deterministic
    selection of bytes (seeded from the plan, site, and key) is
    overwritten with printable garbage — the "malformed router" the
    paper's tolerant parser must survive. *)

type injection = { i_site : string; i_key : string option; i_kind : kind }
(** One fired fault, as recorded in the plan's log. *)

val injections : t -> injection list
(** Every fault fired so far, oldest first.  The chaos suite asserts
    each configured fault appears here exactly once. *)

val site_of_exn : exn -> string option
(** The site of an {!Injected} exception, [None] otherwise. *)

(* Span tracer with per-domain buffers.

   Recording a span only touches domain-local state: each domain lazily
   allocates a buffer per recorder (DLS key) and registers a flush thunk
   in its own flusher list.  Merging into the shared recorder happens
   under the recorder mutex, but only at hand-off points: when a pool
   worker exits (Pool calls [flush_current_domain]) and when the
   exporting domain reads the spans.  So the hot path is lock-free and
   cross-domain reads only see flushed, immutable data. *)

type value = Bool of bool | Int of int | Float of float | String of string

type span = {
  name : string;
  cat : string;
  ts_us : float;
  dur_us : float;
  tid : int;
  depth : int;
  args : (string * value) list;
}

type local = {
  mutable depth : int; (* open spans in this domain *)
  mutable buf : span list; (* completed spans, newest first *)
}

(* Flush thunks for every recorder this domain has written to. *)
let domain_flushers : (unit -> unit) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

type t = {
  mutex : Mutex.t;
  epoch : float;
  mutable merged : span list; (* flushed spans, newest first *)
  key : local Domain.DLS.key;
}

let now () = Unix.gettimeofday ()

let flush_from (l : local) t =
  match l.buf with
  | [] -> ()
  | spans ->
    l.buf <- [];
    Mutex.protect t.mutex (fun () -> t.merged <- spans @ t.merged)

let create () =
  (* The DLS initializer needs the recorder to register its flush thunk,
     and the recorder needs the key: tie the knot through a ref.  The
     ref is filled before any domain can touch the key. *)
  let tref = ref None in
  let key =
    Domain.DLS.new_key (fun () ->
        let l = { depth = 0; buf = [] } in
        (match !tref with
         | Some t ->
           let fl = Domain.DLS.get domain_flushers in
           fl := (fun () -> flush_from l t) :: !fl
         | None -> ());
        l)
  in
  let t = { mutex = Mutex.create (); epoch = now (); merged = []; key } in
  tref := Some t;
  t

let local t = Domain.DLS.get t.key

let flush_current_domain () =
  List.iter (fun f -> f ()) !(Domain.DLS.get domain_flushers)

type handle =
  | No_span
  | Open of {
      h_t : t;
      h_name : string;
      h_cat : string;
      h_args : (string * value) list;
      h_start : float;
      h_depth : int;
    }

let begin_span ?(cat = "stage") ?(args = []) t name =
  match t with
  | None -> No_span
  | Some t ->
    let l = local t in
    let d = l.depth in
    l.depth <- d + 1;
    Open { h_t = t; h_name = name; h_cat = cat; h_args = args; h_start = now (); h_depth = d }

let end_span ?(args = []) h =
  match h with
  | No_span -> ()
  | Open h ->
    let stop = now () in
    let l = local h.h_t in
    l.depth <- l.depth - 1;
    let s =
      {
        name = h.h_name;
        cat = h.h_cat;
        ts_us = (h.h_start -. h.h_t.epoch) *. 1e6;
        dur_us = (stop -. h.h_start) *. 1e6;
        tid = (Domain.self () :> int);
        depth = h.h_depth;
        args = h.h_args @ args;
      }
    in
    l.buf <- s :: l.buf

let span ?cat ?args t name f =
  match t with
  | None -> f ()
  | Some _ ->
    let h = begin_span ?cat ?args t name in
    Fun.protect ~finally:(fun () -> end_span h) f

let span_with ?cat ?args t name post f =
  match t with
  | None -> f ()
  | Some _ -> (
    let h = begin_span ?cat ?args t name in
    match f () with
    | v ->
      end_span ~args:(post v) h;
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      end_span h;
      Printexc.raise_with_backtrace e bt)

let spans t =
  flush_from (local t) t;
  let merged = Mutex.protect t.mutex (fun () -> t.merged) in
  List.stable_sort (fun a b -> Float.compare a.ts_us b.ts_us) (List.rev merged)

let stage_table ?(cat = "stage") t =
  let cells = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun s ->
      if String.equal s.cat cat then begin
        match Hashtbl.find_opt cells s.name with
        | Some (total, count) -> Hashtbl.replace cells s.name (total +. s.dur_us, count + 1)
        | None ->
          Hashtbl.add cells s.name (s.dur_us, 1);
          order := s.name :: !order
      end)
    (spans t);
  List.rev_map
    (fun name ->
      let total, count = Hashtbl.find cells name in
      (name, total /. 1e6, count))
    !order

let total ?cat t =
  List.fold_left (fun acc (_, s, _) -> acc +. s) 0.0 (stage_table ?cat t)

let render_stages ?cat t =
  match stage_table ?cat t with
  | [] -> "(no stages recorded)\n"
  | sts ->
    let rows =
      List.map (fun (stage, s, n) -> [ stage; Printf.sprintf "%.3f" s; string_of_int n ]) sts
      @ [ [ "total"; Printf.sprintf "%.3f" (total ?cat t); "" ] ]
    in
    Table.render ~headers:[ "stage"; "seconds"; "spans" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right ]
      rows

let json_of_value = function
  | Bool b -> Json.Bool b
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | String s -> Json.String s

let to_json t =
  let pid = Unix.getpid () in
  let events =
    List.map
      (fun s ->
        Json.Obj
          [
            ("name", Json.String s.name);
            ("cat", Json.String s.cat);
            ("ph", Json.String "X");
            ("ts", Json.Float s.ts_us);
            ("dur", Json.Float s.dur_us);
            ("pid", Json.Int pid);
            ("tid", Json.Int s.tid);
            ( "args",
              Json.Obj
                (("depth", Json.Int s.depth)
                 :: List.map (fun (k, v) -> (k, json_of_value v)) s.args) );
          ])
      (spans t)
  in
  Json.Obj [ ("traceEvents", Json.List events); ("displayTimeUnit", Json.String "ms") ]

let to_file t path = Json.to_file path (to_json t)

let reset t =
  let l = local t in
  l.buf <- [];
  Mutex.protect t.mutex (fun () -> t.merged <- [])

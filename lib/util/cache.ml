type key = string (* 20-byte raw SHA-1 digest *)

(* Unambiguous framing: the digest covers the stage name, the version,
   and every part prefixed by its length, so ["ab"; "c"] and ["a"; "bc"]
   derive different keys. *)
let key ~stage ~version parts =
  let buf = Buffer.create 256 in
  Buffer.add_string buf stage;
  Buffer.add_char buf '\x00';
  Buffer.add_string buf (string_of_int version);
  Buffer.add_char buf '\x00';
  List.iter
    (fun part ->
      Buffer.add_string buf (string_of_int (String.length part));
      Buffer.add_char buf '\x01';
      Buffer.add_string buf part)
    parts;
  Sha1.digest_string (Buffer.contents buf)

let key_of_keys ~stage ~version keys = key ~stage ~version keys

let hex = Sha1.to_hex
let raw (k : key) : Store.key = k

type 'a codec = { encode : 'a -> string; decode : string -> 'a option }

(* [hot] is the second-chance bit: set on every lookup hit, cleared by
   an eviction sweep.  An entry neither found nor inserted between two
   sweeps is cold and gets evicted first. *)
type 'a entry = { value : 'a; mutable hot : bool }

type 'a t = {
  name : string;
  capacity : int;
  mutex : Mutex.t;
  table : (key, 'a entry) Hashtbl.t;
  durable : (Store.t * 'a codec) option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
}

let create ?(capacity = 256) ?durable ~name () =
  {
    name;
    capacity = max 1 capacity;
    mutex = Mutex.create ();
    table = Hashtbl.create 64;
    durable;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
  }

let name c = c.name

let locked c f =
  Mutex.lock c.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.mutex) f

let counter c what = Printf.sprintf "cache.%s.%s" c.name what

let set_entries metrics c =
  Metrics.set metrics (counter c "entries") (float_of_int (Hashtbl.length c.table))

(* Segmented second-chance eviction: a capacity hit sweeps the table
   once, evicting cold entries (and, only if the cold set alone is not
   enough, demoted hot ones) until at most half the capacity remains,
   and clears the hot bit on the survivors.  A warm working set — the
   entries a what-if sweep keeps re-finding — survives the sweep; only
   the cold tail pays.  Must be called with the store lock held. *)
let evict_sweep metrics c =
  let target = c.capacity / 2 in
  let cold = ref [] and hot = ref [] in
  Hashtbl.iter
    (fun k e ->
      if e.hot then begin
        e.hot <- false;
        hot := k :: !hot
      end
      else cold := k :: !cold)
    c.table;
  let evicted = ref 0 in
  let evict k =
    if Hashtbl.length c.table > target then begin
      Hashtbl.remove c.table k;
      incr evicted
    end
  in
  List.iter evict !cold;
  List.iter evict !hot;
  c.evictions <- c.evictions + !evicted;
  Metrics.incr metrics ~by:!evicted (counter c "evictions")

(* Insert with eviction-on-capacity; lock held.  New entries arrive
   hot so a sweep immediately after an insertion burst does not drop
   the values just computed. *)
let insert_locked metrics c k v =
  if Hashtbl.length c.table >= c.capacity && not (Hashtbl.mem c.table k) then
    evict_sweep metrics c;
  Hashtbl.replace c.table k { value = v; hot = true };
  set_entries metrics c

let find ?metrics c k =
  let r =
    locked c (fun () ->
        match Hashtbl.find_opt c.table k with
        | Some e ->
          e.hot <- true;
          c.hits <- c.hits + 1;
          Some e.value
        | None -> None)
  in
  match r with
  | Some _ ->
    Metrics.incr metrics (counter c "hits");
    r
  | None ->
    (* Memory miss: probe the durable backend (outside the lock — the
       store does its own locking and I/O is slow) and re-admit a
       verified entry.  A durable restore counts as a hit of the
       two-level cache; the store's own counters expose the split. *)
    let restored =
      match c.durable with
      | None -> None
      | Some (store, codec) -> Option.bind (Store.find store k) codec.decode
    in
    (match restored with
     | Some v ->
       locked c (fun () ->
           c.hits <- c.hits + 1;
           insert_locked metrics c k v);
       Metrics.incr metrics (counter c "hits")
     | None ->
       locked c (fun () -> c.misses <- c.misses + 1);
       Metrics.incr metrics (counter c "misses"));
    restored

let add ?metrics c k v =
  (* Write-through first: if encoding raises, memory stays consistent
     and the caller sees the error; the store itself never raises. *)
  (match c.durable with
   | Some (store, codec) -> Store.add store k (codec.encode v)
   | None -> ());
  locked c (fun () -> insert_locked metrics c k v)

let find_or_add ?metrics ?trace c k f =
  match find ?metrics c k with
  | Some v -> v
  | None ->
    let v =
      Trace.span ~cat:"cache"
        ~args:[ ("cache", Trace.String c.name); ("key", Trace.String (hex k)) ]
        trace "cache.miss" f
    in
    add ?metrics c k v;
    v

let invalidate ?metrics c k =
  locked c (fun () ->
      if Hashtbl.mem c.table k then begin
        Hashtbl.remove c.table k;
        c.invalidations <- c.invalidations + 1;
        Metrics.incr metrics (counter c "invalidations");
        set_entries metrics c
      end)

let clear ?metrics c =
  locked c (fun () ->
      let n = Hashtbl.length c.table in
      if n > 0 then begin
        Hashtbl.reset c.table;
        c.invalidations <- c.invalidations + n;
        Metrics.incr metrics ~by:n (counter c "invalidations");
        set_entries metrics c
      end)

let length c = locked c (fun () -> Hashtbl.length c.table)

type stats = { hits : int; misses : int; evictions : int; invalidations : int }

let stats c =
  locked c (fun () ->
      {
        hits = c.hits;
        misses = c.misses;
        evictions = c.evictions;
        invalidations = c.invalidations;
      })

type key = string (* 20-byte raw SHA-1 digest *)

(* Unambiguous framing: the digest covers the stage name, the version,
   and every part prefixed by its length, so ["ab"; "c"] and ["a"; "bc"]
   derive different keys. *)
let key ~stage ~version parts =
  let buf = Buffer.create 256 in
  Buffer.add_string buf stage;
  Buffer.add_char buf '\x00';
  Buffer.add_string buf (string_of_int version);
  Buffer.add_char buf '\x00';
  List.iter
    (fun part ->
      Buffer.add_string buf (string_of_int (String.length part));
      Buffer.add_char buf '\x01';
      Buffer.add_string buf part)
    parts;
  Sha1.digest_string (Buffer.contents buf)

let key_of_keys ~stage ~version keys = key ~stage ~version keys

let hex = Sha1.to_hex

type 'a t = {
  name : string;
  capacity : int;
  mutex : Mutex.t;
  table : (key, 'a) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
}

let create ?(capacity = 256) ~name () =
  {
    name;
    capacity = max 1 capacity;
    mutex = Mutex.create ();
    table = Hashtbl.create 64;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
  }

let name c = c.name

let locked c f =
  Mutex.lock c.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.mutex) f

let counter c what = Printf.sprintf "cache.%s.%s" c.name what

let set_entries metrics c =
  Metrics.set metrics (counter c "entries") (float_of_int (Hashtbl.length c.table))

let find ?metrics c k =
  let r =
    locked c (fun () ->
        match Hashtbl.find_opt c.table k with
        | Some v ->
          c.hits <- c.hits + 1;
          Some v
        | None ->
          c.misses <- c.misses + 1;
          None)
  in
  (match r with
   | Some _ -> Metrics.incr metrics (counter c "hits")
   | None -> Metrics.incr metrics (counter c "misses"));
  r

let add ?metrics c k v =
  locked c (fun () ->
      if Hashtbl.length c.table >= c.capacity && not (Hashtbl.mem c.table k) then begin
        c.evictions <- c.evictions + Hashtbl.length c.table;
        Metrics.incr metrics ~by:(Hashtbl.length c.table) (counter c "evictions");
        Hashtbl.reset c.table
      end;
      Hashtbl.replace c.table k v;
      set_entries metrics c)

let find_or_add ?metrics ?trace c k f =
  match find ?metrics c k with
  | Some v -> v
  | None ->
    let v =
      Trace.span ~cat:"cache"
        ~args:[ ("cache", Trace.String c.name); ("key", Trace.String (hex k)) ]
        trace "cache.miss" f
    in
    add ?metrics c k v;
    v

let invalidate ?metrics c k =
  locked c (fun () ->
      if Hashtbl.mem c.table k then begin
        Hashtbl.remove c.table k;
        c.invalidations <- c.invalidations + 1;
        Metrics.incr metrics (counter c "invalidations");
        set_entries metrics c
      end)

let clear ?metrics c =
  locked c (fun () ->
      let n = Hashtbl.length c.table in
      if n > 0 then begin
        Hashtbl.reset c.table;
        c.invalidations <- c.invalidations + n;
        Metrics.incr metrics ~by:n (counter c "invalidations");
        set_entries metrics c
      end)

let length c = locked c (fun () -> Hashtbl.length c.table)

type stats = { hits : int; misses : int; evictions : int; invalidations : int }

let stats c =
  locked c (fun () ->
      {
        hits = c.hits;
        misses = c.misses;
        evictions = c.evictions;
        invalidations = c.invalidations;
      })

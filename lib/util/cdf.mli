(** Empirical cumulative distribution functions and ASCII plots.

    Figures 4, 8 and 11 of the paper are distribution plots; the benchmark
    harness renders them as ASCII so the series can be compared by eye and
    by machine. *)

type t
(** An empirical CDF over float samples. *)

val of_samples : float list -> t
(** Build from raw samples.  The empty sample list yields an empty CDF. *)

val eval : t -> float -> float
(** [eval t x] = fraction of samples [<= x], in [\[0,1\]]; 0 for an empty
    CDF. *)

val points : t -> (float * float) list
(** Sorted (value, cumulative fraction) step points. *)

val size : t -> int
(** Number of samples the CDF was built from. *)

val plot : ?width:int -> ?height:int -> ?x_label:string -> t -> string
(** ASCII art rendering of the CDF curve. *)

val plot_series :
  ?width:int -> ?height:int -> (string * float list) list -> string
(** Render several named series' CDFs on one set of axes, one mark per
    series. *)

(* Budgets are plain integers consulted inline by the hot loops; the
   exception carries the site name so supervisors can report where a
   run was cut short without parsing messages. *)

type t = {
  max_config_bytes : int;
  max_fixpoint_iterations : int;
  max_propagate_iterations : int;
  max_subnets : int;
}

exception Budget_exceeded of { site : string; budget : int }

let () =
  Printexc.register_printer (function
    | Budget_exceeded { site; budget } ->
      Some (Printf.sprintf "budget exceeded at %s (limit %d)" site budget)
    | _ -> None)

let default =
  {
    max_config_bytes = 8 * 1024 * 1024;
    max_fixpoint_iterations = 10_000;
    max_propagate_iterations = 100;
    max_subnets = 1_000_000;
  }

let check ~site ~budget v = if v > budget then raise (Budget_exceeded { site; budget })

let site_of_exn = function Budget_exceeded { site; _ } -> Some site | _ -> None

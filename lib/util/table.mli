(** Plain-text table rendering for experiment output.

    Every benchmark prints its table/figure in the same row/column layout as
    the paper; this module does the alignment. *)

type align = Left | Right
(** Per-column alignment. *)

val render : ?headers:string list -> ?aligns:align list -> string list list -> string
(** [render ~headers rows] lays the rows out in aligned columns with a rule
    under the header.  Default alignment is [Left]; [aligns] may be shorter
    than the column count (remaining columns default to [Left]). *)

val print : ?headers:string list -> ?aligns:align list -> string list list -> unit
(** [render] followed by [print_string]. *)

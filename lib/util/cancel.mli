(** Cooperative cancellation tokens with deadlines.

    A token is a shared flag that long-running code polls at its natural
    yield points (fixpoint generations, simulation rounds, per-file
    parse loops, per-network oracles).  Nothing is ever interrupted
    pre-emptively: a cancelled computation stops at its next poll, so
    data structures are never observed mid-update.

    Tokens form a tree: {!child} derives a token whose cancellation
    state includes its parent's, and whose deadline is the tighter of
    its own budget and everything above it.  The intended shape is one
    root per process (tripped by [--deadline] or a SIGINT handler) and
    one child per supervised task ([--task-timeout]), so a slow task
    times out alone while a process-level stop reaches every task.

    Every poll entry point takes a [t option] and treats [None] as
    "never cancelled", mirroring the [?faults]/[?metrics] threading
    idiom — call sites stay unconditional. *)

type t
(** A cancellation token.  Thread/domain-safe: any domain may cancel,
    any domain may poll. *)

type reason =
  | Deadline of float  (** the budget (in seconds) that expired. *)
  | Stopped of string  (** explicit {!cancel}, e.g. ["SIGINT"]. *)

exception Cancelled of { site : string; reason : reason }
(** Raised by {!check} at poll point [site].  Registered with
    [Printexc] so it renders as e.g.
    [cancelled at study.network: deadline 2.5s exceeded]. *)

val create : ?deadline:float -> unit -> t
(** Fresh root token.  [deadline] is a budget in seconds from now;
    once it elapses every poll reports {!Deadline}. *)

val child : ?deadline:float -> t -> t
(** Token cancelled whenever [t] is, with its own (typically tighter)
    budget of [deadline] seconds from now.  The parent's deadline still
    applies through the chain, so the effective deadline is the tighter
    of the two. *)

val cancel : ?reason:string -> t -> unit
(** Trip [t] (default reason ["cancelled"]).  Idempotent: the first
    cancellation (or deadline expiry) wins and its reason sticks.
    Async-signal-safe: a single atomic store, no locking — callable
    from a [Sys.Signal_handle]. *)

val status : t -> reason option
(** [Some r] once [t] (or an ancestor) is cancelled or past its
    deadline; [None] while the computation may proceed. *)

val cancelled : t option -> bool
(** Non-raising poll: [true] once cancelled.  [None] is never
    cancelled.  Hot loops that must degrade rather than raise (the
    simulator's round loop) use this to exit with [converged = false]. *)

val check : site:string -> t option -> unit
(** Raising poll: no-op while live, raises {!Cancelled} with [site]
    once cancelled.  [site] names the poll point
    (["reach.fixpoint"], ["parse.file"], ...) exactly like
    {!Fault.fault_point} and {!Limits.check} sites, and is what the
    failed-networks table reports. *)

val remaining : t -> float option
(** Seconds until the tightest deadline on the chain ([None] if no
    deadline anywhere).  May be negative once expired. *)

val reason_to_string : reason -> string
(** ["deadline 2.5s exceeded"] / ["stopped: SIGINT"]. *)

val site_of_exn : exn -> string option
(** The poll site of a {!Cancelled} exception, [None] otherwise —
    composes with [Fault.site_of_exn] and [Limits.site_of_exn] in the
    pool's failure classifier. *)

val reason_of_exn : exn -> reason option
(** The reason of a {!Cancelled} exception, [None] otherwise. *)

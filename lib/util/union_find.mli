(** Disjoint-set forest with union by rank and path compression.

    Used to group routing processes into routing instances (§3.2 of the
    paper): the transitive closure of same-protocol adjacency is exactly a
    union-find over processes. *)

type t
(** A disjoint-set forest over integer elements. *)

val create : int -> t
(** [create n] makes [n] singleton sets labelled [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative of the element's set. *)

val union : t -> int -> int -> unit
(** Merge two sets.  No-op if already together. *)

val same : t -> int -> int -> bool
(** [same t a b] iff [a] and [b] are currently in one set. *)

val count : t -> int
(** Number of distinct sets. *)

val groups : t -> (int, int list) Hashtbl.t
(** Map from representative to the members of its set. *)

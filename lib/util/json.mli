(** Minimal hand-rolled JSON emission (no parsing, no dependencies).

    Used for machine-readable benchmark output.  Strings are escaped
    per RFC 8259; non-finite floats are emitted as [null] since JSON
    cannot represent them. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val to_channel : out_channel -> t -> unit
(** Writes the value followed by a newline. *)

val to_file : string -> t -> unit
(** Writes (truncating) to [path], value followed by a newline. *)

(** Minimal hand-rolled JSON emission and parsing (no dependencies).

    Used for machine-readable benchmark, trace ({!Trace.to_json}) and
    metrics ({!Metrics.to_json}) output, and to validate that output in
    tests.  Strings are escaped per RFC 8259; non-finite floats are
    emitted as [null] since JSON cannot represent them. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val to_channel : out_channel -> t -> unit
(** Writes the value followed by a newline. *)

val to_file : string -> t -> unit
(** Writes (truncating) to [path], value followed by a newline. *)

val of_string : string -> (t, string) result
(** Parse one JSON value (RFC 8259).  Numbers without a fraction or
    exponent that fit in [int] become [Int], all others [Float]; [\uXXXX]
    escapes (including surrogate pairs) decode to UTF-8.  [Error msg]
    carries the byte offset of the first problem. *)

val member : string -> t -> t option
(** [member key (Obj fields)] looks up a field; [None] on non-objects
    and missing keys. *)

(* Fixed-size domain worker pool.

   Tasks are closures pushed onto a mutex/condition-protected queue;
   [jobs] worker domains pop and run them.  [mapi] fans a list out in
   index chunks and reassembles results in input order, so parallel maps
   are observably identical to [List.mapi].  Worker domains mark
   themselves via a DLS flag; a parallel map issued from inside a worker
   runs sequentially instead of deadlocking on pool capacity.

   When a recorder/registry is attached, [submit] wraps each task to
   record a queue-wait histogram and a "task" span; workers flush their
   domain-local span buffers just before exiting so every span recorded
   inside the pool survives the join. *)

type t = {
  size : int;
  mutex : Mutex.t;
  work_available : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable domains : unit Domain.t list;
  trace : Trace.t option;
  metrics : Metrics.t option;
  mutable busy_us : float; (* task wall-clock total; protected by [mutex] *)
  started : float;
}

let in_worker_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let in_worker () = Domain.DLS.get in_worker_key

let default_jobs () =
  match Sys.getenv_opt "RDNA_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let jobs t = t.size

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closed do
    Condition.wait t.work_available t.mutex
  done;
  if Queue.is_empty t.queue then begin
    Mutex.unlock t.mutex;
    (* Hand-off point: merge this domain's span buffers into their
       recorders before the domain dies with them. *)
    Trace.flush_current_domain ()
  end
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    task ();
    worker_loop t
  end

let create ?jobs ?trace ?metrics () =
  let size = max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  let t =
    {
      size;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      closed = false;
      domains = [];
      trace;
      metrics;
      busy_us = 0.0;
      started = Trace.now ();
    }
  in
  t.domains <-
    List.init size (fun _ ->
        Domain.spawn (fun () ->
            Domain.DLS.set in_worker_key true;
            worker_loop t));
  t

let instrument t task =
  match (t.trace, t.metrics) with
  | None, None -> task
  | _ ->
    let enqueued = Trace.now () in
    fun () ->
      let start = Trace.now () in
      Metrics.incr t.metrics "pool.tasks";
      Metrics.observe t.metrics "pool.queue_wait_ms" ((start -. enqueued) *. 1e3);
      let h = Trace.begin_span ~cat:"pool" t.trace "task" in
      Fun.protect
        ~finally:(fun () ->
          Trace.end_span h;
          let dur = Trace.now () -. start in
          Metrics.observe t.metrics "pool.task_ms" (dur *. 1e3);
          Mutex.protect t.mutex (fun () -> t.busy_us <- t.busy_us +. (dur *. 1e6)))
        task

let submit t task =
  let task = instrument t task in
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push task t.queue;
  Condition.signal t.work_available;
  Mutex.unlock t.mutex

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- [];
  match t.metrics with
  | None -> ()
  | Some _ ->
    let elapsed_us = (Trace.now () -. t.started) *. 1e6 in
    Metrics.set t.metrics "pool.workers" (float_of_int t.size);
    if elapsed_us > 0.0 then
      Metrics.set t.metrics "pool.utilization"
        (t.busy_us /. (elapsed_us *. float_of_int t.size))

let with_pool ?jobs ?trace ?metrics f =
  let t = create ?jobs ?trace ?metrics () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Tasks never outlive [mapi]: every chunk decrements [remaining] under
   [m] even when the user function raises, and the caller sleeps on
   [all_done] until the count drains.  The first exception (with its
   backtrace) wins; later chunks see it and skip their work. *)
let mapi t f l =
  let n = List.length l in
  if n = 0 then []
  else if t.size <= 1 || n = 1 || in_worker () then List.mapi f l
  else begin
    let input = Array.of_list l in
    let results = Array.make n None in
    let m = Mutex.create () in
    let all_done = Condition.create () in
    let chunk = max 1 ((n + (t.size * 4) - 1) / (t.size * 4)) in
    let nchunks = (n + chunk - 1) / chunk in
    let remaining = ref nchunks in
    let error = ref None in
    let rec enqueue start =
      if start < n then begin
        let stop = min n (start + chunk) in
        submit t (fun () ->
            let poisoned = Mutex.protect m (fun () -> !error <> None) in
            (try
               if not poisoned then
                 for i = start to stop - 1 do
                   results.(i) <- Some (f i input.(i))
                 done
             with e ->
               let bt = Printexc.get_raw_backtrace () in
               Mutex.protect m (fun () ->
                   if !error = None then error := Some (e, bt)));
            Mutex.lock m;
            decr remaining;
            if !remaining = 0 then Condition.signal all_done;
            Mutex.unlock m);
        enqueue stop
      end
    in
    enqueue 0;
    Mutex.lock m;
    while !remaining > 0 do
      Condition.wait all_done m
    done;
    Mutex.unlock m;
    (match !error with
     | Some (e, bt) -> Printexc.raise_with_backtrace e bt
     | None -> ());
    Array.to_list (Array.map Option.get results)
  end

let map t f l = mapi t (fun _ x -> f x) l

let parallel_mapi ?jobs ?trace ?metrics f l =
  let size = max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  if size <= 1 || List.length l <= 1 || in_worker () then List.mapi f l
  else with_pool ~jobs:size ?trace ?metrics (fun t -> mapi t f l)

let parallel_map ?jobs ?trace ?metrics f l =
  parallel_mapi ?jobs ?trace ?metrics (fun _ x -> f x) l

(* Fixed-size domain worker pool.

   Tasks are closures pushed onto a mutex/condition-protected queue;
   [jobs] worker domains pop and run them.  [mapi] fans a list out in
   index chunks and reassembles results in input order, so parallel maps
   are observably identical to [List.mapi].  Worker domains mark
   themselves via a DLS flag; a parallel map issued from inside a worker
   runs sequentially instead of deadlocking on pool capacity.

   Robustness invariants: a worker never dies with the queue non-empty
   (it catches whatever escapes a task), and the map combinators keep
   their completion accounting in a [Fun.protect] finalizer, so an
   exception raised anywhere between task pickup and completion — the
   [pool.pickup] fault site simulates exactly that window — can delay a
   map but never deadlock its [all_done] wait.

   When a recorder/registry is attached, [submit] wraps each task to
   record a queue-wait histogram and a "task" span; workers flush their
   domain-local span buffers just before exiting so every span recorded
   inside the pool survives the join. *)

type t = {
  size : int;
  mutex : Mutex.t;
  work_available : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable domains : unit Domain.t list;
  trace : Trace.t option;
  metrics : Metrics.t option;
  faults : Fault.t option;
  mutable busy_us : float; (* task wall-clock total; protected by [mutex] *)
  started : float;
}

let in_worker_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let in_worker () = Domain.DLS.get in_worker_key

let default_jobs () =
  match Sys.getenv_opt "RDNA_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let jobs t = t.size

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closed do
    Condition.wait t.work_available t.mutex
  done;
  if Queue.is_empty t.queue then begin
    Mutex.unlock t.mutex;
    (* Hand-off point: merge this domain's span buffers into their
       recorders before the domain dies with them. *)
    Trace.flush_current_domain ()
  end
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    (* A raising task must not take the worker down with it: the map
       combinators do their own error capture, so anything reaching
       here is a raw [submit] task (or a recorder bug) — count it and
       keep serving the queue. *)
    (try task () with _ -> Metrics.incr t.metrics "pool.task_failures");
    worker_loop t
  end

let create ?jobs ?trace ?metrics ?faults () =
  let size = max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  let t =
    {
      size;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      closed = false;
      domains = [];
      trace;
      metrics;
      faults;
      busy_us = 0.0;
      started = Trace.now ();
    }
  in
  t.domains <-
    List.init size (fun _ ->
        Domain.spawn (fun () ->
            Domain.DLS.set in_worker_key true;
            worker_loop t));
  t

let instrument t task =
  match (t.trace, t.metrics) with
  | None, None -> task
  | _ ->
    let enqueued = Trace.now () in
    fun () ->
      let start = Trace.now () in
      Metrics.incr t.metrics "pool.tasks";
      Metrics.observe t.metrics "pool.queue_wait_ms" ((start -. enqueued) *. 1e3);
      let h = Trace.begin_span ~cat:"pool" t.trace "task" in
      Fun.protect
        ~finally:(fun () ->
          Trace.end_span h;
          let dur = Trace.now () -. start in
          Metrics.observe t.metrics "pool.task_ms" (dur *. 1e3);
          Mutex.protect t.mutex (fun () -> t.busy_us <- t.busy_us +. (dur *. 1e6)))
        task

let submit t task =
  let task = instrument t task in
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push task t.queue;
  Condition.signal t.work_available;
  Mutex.unlock t.mutex

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- [];
  match t.metrics with
  | None -> ()
  | Some _ ->
    let elapsed_us = (Trace.now () -. t.started) *. 1e6 in
    Metrics.set t.metrics "pool.workers" (float_of_int t.size);
    if elapsed_us > 0.0 then
      Metrics.set t.metrics "pool.utilization"
        (t.busy_us /. (elapsed_us *. float_of_int t.size))

let with_pool ?jobs ?trace ?metrics ?faults f =
  let t = create ?jobs ?trace ?metrics ?faults () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* ------------------------------------------------------------ failures --- *)

type cause =
  | Exn
  | Fault of string
  | Budget of string
  | Timed_out of Cancel.reason

type failure = {
  exn : exn;
  backtrace : string;
  site : string option;
  cause : cause;
  attempts : int;
  elapsed : float;
}

let failure_site e =
  match Cancel.site_of_exn e with
  | Some _ as s -> s
  | None ->
    (match Fault.site_of_exn e with Some _ as s -> s | None -> Limits.site_of_exn e)

let cause_of_exn e =
  match Cancel.reason_of_exn e with
  | Some r -> Timed_out r
  | None ->
    (match e with
     | Fault.Injected (site, _) -> Fault site
     | Limits.Budget_exceeded { site; _ } -> Budget site
     | _ -> Exn)

(* A cancelled task is never retried: its deadline stays expired, so a
   retry can only burn budget re-reaching the same poll point. *)
let retryable = function Timed_out _ -> false | Exn | Fault _ | Budget _ -> true

let failure_of ?(attempts = 1) ?(elapsed = 0.0) e bt =
  { exn = e; backtrace = bt; site = failure_site e; cause = cause_of_exn e; attempts; elapsed }

(* Run one item under supervision: catch, optionally retry with
   exponential backoff, and report the terminal failure with its cause,
   site and total elapsed time.  [cancel] is polled before each attempt
   so work queued behind a tripped token fails fast instead of running.
   This is the sequential path — the in-pool path in [mapi_results]
   requeues instead of sleeping, but here there is no queue to yield
   to, so the backoff sleep is inline. *)
let supervised ~retries ~backoff ~metrics ?cancel f i x =
  let started = Trace.now () in
  let rec attempt k =
    match
      Cancel.check ~site:"pool.queued" cancel;
      f i x
    with
    | y -> Ok y
    | exception e ->
      let bt = Printexc.get_backtrace () in
      let fl = failure_of ~attempts:k ~elapsed:(Trace.now () -. started) e bt in
      if k <= retries && retryable fl.cause then begin
        Metrics.incr metrics "task.retried";
        if backoff > 0.0 then Unix.sleepf (backoff *. float_of_int (1 lsl (k - 1)));
        attempt (k + 1)
      end
      else Error fl
  in
  attempt 1

(* Chunked fan-out shared by the fail-fast and supervised maps: [run]
   handles one chunk and must not raise.  Completion accounting lives in
   a finalizer so a raising [run] (it never should) still drains
   [all_done]. *)
let fan_out t ~n ~run =
  let m = Mutex.create () in
  let all_done = Condition.create () in
  let chunk = max 1 ((n + (t.size * 4) - 1) / (t.size * 4)) in
  let nchunks = (n + chunk - 1) / chunk in
  let remaining = ref nchunks in
  let rec enqueue start =
    if start < n then begin
      let stop = min n (start + chunk) in
      submit t (fun () ->
          Fun.protect
            ~finally:(fun () ->
              Mutex.lock m;
              decr remaining;
              if !remaining = 0 then Condition.signal all_done;
              Mutex.unlock m)
            (fun () -> run ~start ~stop));
      enqueue stop
    end
  in
  enqueue 0;
  Mutex.lock m;
  while !remaining > 0 do
    Condition.wait all_done m
  done;
  Mutex.unlock m

(* Tasks never outlive [mapi]: every chunk decrements [remaining] in its
   finalizer even when the user function (or an injected pickup fault)
   raises, and the caller sleeps on [all_done] until the count drains.
   The first exception (with its backtrace) wins; later chunks see it
   and skip their work. *)
let mapi t f l =
  let n = List.length l in
  if n = 0 then []
  else if t.size <= 1 || n = 1 || in_worker () then List.mapi f l
  else begin
    let input = Array.of_list l in
    let results = Array.make n None in
    let m = Mutex.create () in
    let error = ref None in
    fan_out t ~n ~run:(fun ~start ~stop ->
        try
          Fault.fault_point t.faults ~site:"pool.pickup";
          let poisoned = Mutex.protect m (fun () -> !error <> None) in
          if not poisoned then
            for i = start to stop - 1 do
              results.(i) <- Some (f i input.(i))
            done
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.protect m (fun () -> if !error = None then error := Some (e, bt)));
    (match !error with
     | Some (e, bt) -> Printexc.raise_with_backtrace e bt
     | None -> ());
    Array.to_list (Array.map Option.get results)
  end

let map t f l = mapi t (fun _ x -> f x) l

(* Supervised variant: no poisoning — every item always gets a result.
   One task per item (not per chunk), so an item that must back off
   before a retry is REQUEUED with a not-before time instead of
   sleeping in the worker: the domain goes back to the queue and other
   items keep flowing through it even on a 2-worker pool.  A requeued
   item that comes up early naps a couple of milliseconds and yields
   the domain again, so the wait costs bounded busy-time and never
   blocks real work.  The [pool.pickup] fault site fires per item here
   (it is per chunk in the fail-fast map), failing just that item. *)
let mapi_results ?(retries = 0) ?(backoff = 0.0) ?cancel t f l =
  let n = List.length l in
  if n = 0 then []
  else if t.size <= 1 || n = 1 || in_worker () then
    List.mapi (fun i x -> supervised ~retries ~backoff ~metrics:t.metrics ?cancel f i x) l
  else begin
    let input = Array.of_list l in
    let results = Array.make n None in
    let m = Mutex.create () in
    let all_done = Condition.create () in
    let remaining = ref n in
    let finish i r =
      Mutex.lock m;
      results.(i) <- Some r;
      decr remaining;
      if !remaining = 0 then Condition.signal all_done;
      Mutex.unlock m
    in
    let rec run_item i ~attempt ~started ~not_before () =
      let now = Trace.now () in
      if now < not_before then begin
        Unix.sleepf (Float.min 0.002 (not_before -. now));
        submit t (run_item i ~attempt ~started ~not_before)
      end
      else begin
        let started = if attempt = 1 then now else started in
        match
          Cancel.check ~site:"pool.queued" cancel;
          Fault.fault_point t.faults ~site:"pool.pickup";
          f i input.(i)
        with
        | y -> finish i (Ok y)
        | exception e ->
          let bt = Printexc.get_backtrace () in
          let fl = failure_of ~attempts:attempt ~elapsed:(Trace.now () -. started) e bt in
          if attempt <= retries && retryable fl.cause then begin
            Metrics.incr t.metrics "task.retried";
            let delay =
              if backoff > 0.0 then backoff *. float_of_int (1 lsl (attempt - 1)) else 0.0
            in
            submit t (run_item i ~attempt:(attempt + 1) ~started ~not_before:(Trace.now () +. delay))
          end
          else finish i (Error fl)
      end
    in
    Array.iteri (fun i _ -> submit t (run_item i ~attempt:1 ~started:0.0 ~not_before:0.0)) input;
    Mutex.lock m;
    while !remaining > 0 do
      Condition.wait all_done m
    done;
    Mutex.unlock m;
    Array.to_list (Array.map Option.get results)
  end

let map_results ?retries ?backoff ?cancel t f l =
  mapi_results ?retries ?backoff ?cancel t (fun _ x -> f x) l

let parallel_mapi ?jobs ?trace ?metrics ?faults f l =
  let size = max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  if size <= 1 || List.length l <= 1 || in_worker () then List.mapi f l
  else with_pool ~jobs:size ?trace ?metrics ?faults (fun t -> mapi t f l)

let parallel_map ?jobs ?trace ?metrics ?faults f l =
  parallel_mapi ?jobs ?trace ?metrics ?faults (fun _ x -> f x) l

let parallel_mapi_results ?jobs ?trace ?metrics ?faults ?cancel ?(retries = 0) ?(backoff = 0.0) f l =
  let size = max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  if size <= 1 || List.length l <= 1 || in_worker () then
    List.mapi (fun i x -> supervised ~retries ~backoff ~metrics ?cancel f i x) l
  else
    with_pool ~jobs:size ?trace ?metrics ?faults (fun t ->
        mapi_results ~retries ~backoff ?cancel t f l)

let parallel_map_results ?jobs ?trace ?metrics ?faults ?cancel ?retries ?backoff f l =
  parallel_mapi_results ?jobs ?trace ?metrics ?faults ?cancel ?retries ?backoff (fun _ x -> f x) l

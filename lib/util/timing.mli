(** Per-stage wall-clock instrumentation.

    A recorder accumulates elapsed seconds and span counts per stage
    name.  All operations are domain-safe (mutex-protected), so pipeline
    stages running on pool workers can share one recorder.  Stage order
    in {!stages} and {!render} is first-seen order. *)

type t
(** A mutable, domain-safe stage recorder. *)

val create : unit -> t

val now : unit -> float
(** Current wall-clock time in seconds ([Unix.gettimeofday]). *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t stage f] runs [f], charging its elapsed wall time to
    [stage] even when [f] raises. *)

val add : t -> string -> float -> unit
(** Charge [seconds] to [stage] directly (one span). *)

val stages : t -> (string * float * int) list
(** [(stage, total seconds, span count)] in first-seen order. *)

val total : t -> float
(** Sum of all stage totals. *)

val reset : t -> unit

val render : t -> string
(** Human-readable stage table. *)

type reason =
  | Deadline of float
  | Stopped of string

exception Cancelled of { site : string; reason : reason }

type t = {
  state : reason option Atomic.t;
  expires : float option; (* absolute, Unix.gettimeofday basis *)
  budget : float option; (* the seconds-from-now this token was given *)
  parent : t option;
}

let reason_to_string = function
  | Deadline s -> Printf.sprintf "deadline %gs exceeded" s
  | Stopped why -> "stopped: " ^ why

let () =
  Printexc.register_printer (function
    | Cancelled { site; reason } ->
      Some (Printf.sprintf "cancelled at %s: %s" site (reason_to_string reason))
    | _ -> None)

let make ?deadline parent =
  let expires = Option.map (fun d -> Unix.gettimeofday () +. d) deadline in
  { state = Atomic.make None; expires; budget = deadline; parent }

let create ?deadline () = make ?deadline None

let child ?deadline t = make ?deadline (Some t)

let cancel ?(reason = "cancelled") t =
  (* First cancellation wins; a lost CAS means someone else's reason
     already stuck, which is exactly the idempotence we want.  No lock
     is taken, so this is safe from a signal handler. *)
  ignore (Atomic.compare_and_set t.state None (Some (Stopped reason)))

(* Deadline expiry latches into [state] so the reason observed by the
   first poll is the reason every later poll (and the failure report)
   sees, even if an explicit [cancel] races in afterwards. *)
let rec status t =
  match Atomic.get t.state with
  | Some _ as r -> r
  | None ->
    let expired =
      match t.expires with
      | Some at when Unix.gettimeofday () >= at ->
        let r = Deadline (Option.value t.budget ~default:0.0) in
        ignore (Atomic.compare_and_set t.state None (Some r));
        Atomic.get t.state
      | _ -> None
    in
    (match expired with
     | Some _ as r -> r
     | None -> (match t.parent with None -> None | Some p -> status p))

let cancelled = function None -> false | Some t -> status t <> None

let check ~site t =
  match t with
  | None -> ()
  | Some t ->
    (match status t with
     | None -> ()
     | Some reason -> raise (Cancelled { site; reason }))

let remaining t =
  let rec tightest acc t =
    let acc =
      match (acc, t.expires) with
      | None, e -> e
      | (Some _ as a), None -> a
      | Some a, Some e -> Some (Float.min a e)
    in
    match t.parent with None -> acc | Some p -> tightest acc p
  in
  Option.map (fun at -> at -. Unix.gettimeofday ()) (tightest None t)

let site_of_exn = function Cancelled { site; _ } -> Some site | _ -> None

let reason_of_exn = function Cancelled { reason; _ } -> Some reason | _ -> None

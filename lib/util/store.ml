(* On-disk format, one file per entry:

     rdstore1\n
     <payload length, decimal>\n
     <20-byte raw SHA-1 of payload>
     <payload>

   The frame makes truncation detectable (length mismatch), bit rot
   detectable (digest mismatch), and foreign files rejectable (magic
   mismatch) — all three degrade to a counted miss. *)

let magic = "rdstore1\n"

type key = string

type t = {
  dir : string;
  metrics : Metrics.t option;
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable writes : int;
  mutable corrupt : int;
  seq : int Atomic.t; (* temp-file uniquifier within this process *)
}

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_dir ?metrics dir =
  mkdir_p dir;
  if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": checkpoint path exists and is not a directory"));
  {
    dir;
    metrics;
    mutex = Mutex.create ();
    hits = 0;
    misses = 0;
    writes = 0;
    corrupt = 0;
    seq = Atomic.make 0;
  }

let dir t = t.dir

let counted t what =
  Mutex.protect t.mutex (fun () ->
      match what with
      | `Hit -> t.hits <- t.hits + 1
      | `Miss -> t.misses <- t.misses + 1
      | `Write -> t.writes <- t.writes + 1
      | `Corrupt ->
        t.corrupt <- t.corrupt + 1;
        t.misses <- t.misses + 1);
  match what with
  | `Hit -> Metrics.incr t.metrics "store.hits"
  | `Miss -> Metrics.incr t.metrics "store.misses"
  | `Write -> Metrics.incr t.metrics "store.writes"
  | `Corrupt ->
    Metrics.incr t.metrics "store.corrupt";
    Metrics.incr t.metrics "store.misses"

let entry_path t k = Filename.concat t.dir (Sha1.to_hex k ^ ".entry")

(* Returns the verified payload without touching counters; the caller
   classifies the outcome. *)
let read_entry path =
  match open_in_bin path with
  | exception Sys_error _ -> `Absent
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          let m = really_input_string ic (String.length magic) in
          if m <> magic then `Corrupt
          else
            match int_of_string_opt (input_line ic) with
            | None -> `Corrupt
            | Some len when len < 0 -> `Corrupt
            | Some len ->
              let digest = really_input_string ic 20 in
              let payload = really_input_string ic len in
              (* Trailing junk means the frame lied about its length. *)
              if pos_in ic <> in_channel_length ic then `Corrupt
              else if Sha1.digest_string payload <> digest then `Corrupt
              else `Entry payload
        with End_of_file | Sys_error _ -> `Corrupt)

let find t k =
  match read_entry (entry_path t k) with
  | `Entry payload ->
    counted t `Hit;
    Some payload
  | `Absent ->
    counted t `Miss;
    None
  | `Corrupt ->
    counted t `Corrupt;
    None

let mem t k = Option.is_some (find t k)

let add t k payload =
  let tmp =
    Filename.concat t.dir
      (Printf.sprintf "tmp-%d-%d" (Unix.getpid ()) (Atomic.fetch_and_add t.seq 1))
  in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc magic;
        output_string oc (string_of_int (String.length payload));
        output_char oc '\n';
        output_string oc (Sha1.digest_string payload);
        output_string oc payload;
        flush oc;
        Unix.fsync (Unix.descr_of_out_channel oc));
    Sys.rename tmp (entry_path t k)
  with
  | () -> counted t `Write
  | exception (Sys_error _ | Unix.Unix_error _) ->
    (* Checkpointing is best-effort: a full disk must not kill the
       run.  Leave no temp droppings behind if we can help it. *)
    (try Sys.remove tmp with Sys_error _ -> ());
    Metrics.incr t.metrics "store.write_failures"

type stats = { hits : int; misses : int; writes : int; corrupt : int }

let stats t =
  Mutex.protect t.mutex (fun () ->
      { hits = t.hits; misses = t.misses; writes = t.writes; corrupt = t.corrupt })

let render_stats t =
  let s = stats t in
  Printf.sprintf "checkpoint store: %d hits, %d misses (%d corrupt), %d writes" s.hits
    s.misses s.corrupt s.writes

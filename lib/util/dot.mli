(** Graphviz DOT emission.

    The paper's figures 5, 6, 9, 10 and 12 are graphs; the CLI can export
    every derived graph as DOT for rendering. *)

type t
(** A graph under construction: nodes, edges and cluster subgraphs. *)

val create : ?directed:bool -> string -> t
(** [create name] starts an empty graph.  Default directed. *)

val node : t -> ?label:string -> ?shape:string -> ?style:string -> string -> unit
(** Declare a node by id with optional attributes.  Redeclaring an id
    overwrites its attributes. *)

val edge : t -> ?label:string -> ?style:string -> string -> string -> unit
(** [edge g u v] adds an edge between node ids [u] and [v] with optional
    attributes.  Endpoints need not have been declared with {!node}. *)

val subgraph : t -> label:string -> string -> string list -> unit
(** [subgraph g ~label id nodes] clusters existing node ids. *)

val to_string : t -> string
(** Render the accumulated graph as DOT source. *)

(** Resource budgets for the analysis pipeline.

    The paper's methodology has to survive 8,035 real-world configuration
    files (§2); a single pathological input — an enormous file, a route
    filter that makes a fixpoint crawl — must degrade into a recorded
    diagnostic, never hang or exhaust the machine.  A [Limits.t] bundles
    the budgets the pipeline consults: stages call {!check} with their
    running count and the budget raises {!Budget_exceeded} the moment a
    budget is crossed, which callers convert into a [budget-exceeded]
    diagnostic ({!Rd_core.Analysis}) or a degraded-network record
    ({!Rd_study.Population}).

    The defaults are far above anything a real network produces, so runs
    on sane inputs are byte-identical whether or not a caller threads
    explicit limits. *)

type t = {
  max_config_bytes : int;
      (** Largest configuration file the parser will accept (bytes). *)
  max_fixpoint_iterations : int;
      (** Reachability fixpoint rounds ({!Rd_reach.Reachability.compute}). *)
  max_propagate_iterations : int;
      (** Route-propagation rounds ({!Rd_sim.Propagate.run}); exceeding it
          reports [converged = false] instead of raising. *)
  max_subnets : int;
      (** Subnet count fed to address-block discovery
          ({!Rd_addrspace.Blocks.discover}). *)
}

exception Budget_exceeded of { site : string; budget : int }
(** Raised by {!check} when a counter crosses its budget.  [site] is the
    budget's stable dotted name (e.g. ["reach.fixpoint"]); a printer is
    registered, so [Printexc.to_string] yields a stable one-line
    message. *)

val default : t
(** [max_config_bytes = 8 MiB], [max_fixpoint_iterations = 10_000],
    [max_propagate_iterations = 100], [max_subnets = 1_000_000]. *)

val check : site:string -> budget:int -> int -> unit
(** [check ~site ~budget v] raises {!Budget_exceeded} when [v > budget];
    otherwise does nothing. *)

val site_of_exn : exn -> string option
(** The budget site of a {!Budget_exceeded}, [None] for any other
    exception. *)

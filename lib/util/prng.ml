type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 output function: mix the advanced counter. *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = bits64 t }

(* Non-negative 61-bit int from the top bits; 2^61 stays well inside
   OCaml's 63-bit native int range. *)
let bits t = Int64.to_int (Int64.shift_right_logical (bits64 t) 3)

let bound = 1 lsl 61

let int t n =
  assert (n > 0);
  if n land (n - 1) = 0 then bits t land (n - 1)
  else begin
    (* Rejection sampling to avoid modulo bias. *)
    let limit = bound - (bound mod n) in
    let rec draw () =
      let r = bits t in
      if r >= limit then draw () else r mod n
    in
    draw ()
  end

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t x =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. (r /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let choice t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

(* Single traversal (Array.of_list) instead of List.length + List.nth;
   the PRNG draw is unchanged so streams stay bit-identical.  Hot loops
   that draw repeatedly from a fixed set should hoist an array and use
   [choice]. *)
let choice_list t l =
  match l with
  | [] -> invalid_arg "Prng.choice_list: empty list"
  | _ ->
    let a = Array.of_list l in
    a.(int t (Array.length a))

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 choices in
  if total <= 0.0 then invalid_arg "Prng.weighted: no positive weight";
  let x = float t total in
  let rec pick acc = function
    | [] -> invalid_arg "Prng.weighted: empty"
    | [ (_, v) ] -> v
    | (w, v) :: rest -> if x < acc +. w then v else pick (acc +. w) rest
  in
  pick 0.0 choices

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample t k xs =
  let a = Array.of_list xs in
  let n = Array.length a in
  let k = min k n in
  shuffle t a;
  Array.to_list (Array.sub a 0 k)

let pareto_int t ~alpha ~xmin =
  let u = 1.0 -. float t 1.0 in
  let x = float_of_int xmin /. (u ** (1.0 /. alpha)) in
  max xmin (int_of_float x)

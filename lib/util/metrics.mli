(** Metrics registry: counters, gauges, and fixed-bucket histograms.

    Alongside {!Trace} spans, the pipeline exposes its internal activity
    — lines parsed, pool queue waits, flood-fill instance sizes,
    reachability fixpoint iterations (paper §3–§6) — as named metrics
    collected in a registry and snapshotted at the end of a run, either
    as human-readable tables ({!render}) or JSON ({!to_json}, the
    [rdna study --metrics-json] output).

    All updates are domain-safe (one registry mutex), so pool workers
    share the registry directly.  Like {!Trace}, every update function
    takes a [t option] and is a no-op on [None], so instrumented code
    threads an optional registry without matching.

    A name is bound to one metric kind on first use; using it as a
    different kind afterwards raises [Invalid_argument]. *)

type t
(** A mutable, domain-safe metrics registry. *)

val create : unit -> t

val incr : ?by:int -> t option -> string -> unit
(** Bump counter [name] by [by] (default 1).  Counters only grow. *)

val set : t option -> string -> float -> unit
(** Set gauge [name] to a value (last write wins). *)

val default_buckets : float array
(** The default histogram boundaries: a 1-2-5 ladder from 1 to 10{^4}.
    Suitable for millisecond latencies and small counts alike. *)

val observe : ?buckets:float array -> t option -> string -> float -> unit
(** Record one observation into histogram [name].  The first observation
    fixes the bucket boundaries ([buckets], default {!default_buckets},
    must be sorted ascending); later [?buckets] arguments are ignored.
    Each bucket counts observations [<=] its upper bound; observations
    above the last bound land in an overflow bucket. *)

type histogram = {
  buckets : (float * int) list;  (** (upper bound, count at or under it since the previous bound). *)
  overflow : int;  (** observations above the last bound. *)
  count : int;
  sum : float;
  min : float;  (** [nan] when [count = 0]. *)
  max : float;  (** [nan] when [count = 0]. *)
}
(** An immutable histogram snapshot. *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram) list;
}
(** A point-in-time copy of the registry, each section sorted by name. *)

val snapshot : t -> snapshot

val counter_value : t -> string -> int option
(** Current value of a counter, if that name is a counter. *)

val find_histogram : t -> string -> histogram option

val render : t -> string
(** Human-readable tables: one for counters, one for gauges, one for
    histograms (count, sum, min, mean, max). *)

val to_json : t -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}]; each
    histogram carries its full bucket list as [{"le": bound, "n": count}]
    rows, with [le = null] for the overflow bucket. *)

val reset : t -> unit
(** Forget every metric (names, kinds, and bucket boundaries included). *)

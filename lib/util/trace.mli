(** Span-based execution tracing for the analysis pipeline.

    The paper's methodology is a staged pipeline (parse → process graphs
    → instances → pathways → address blocks → reachability, §3–§6); this
    module makes a run of that pipeline inspectable.  A recorder collects
    {e spans} — named, nested intervals of wall-clock time with key/value
    attributes — and exports them as Chrome [trace_event] JSON
    (load the file in [chrome://tracing] or {{:https://ui.perfetto.dev}
    Perfetto}) or aggregates them into the per-stage table that
    [rdna study --timing] prints (the successor of the former
    [Rd_util.Timing] module).

    {2 Domain safety}

    Spans are buffered {e per domain} (domain-local storage), so
    recording a span never takes a lock; a pool worker's buffer is merged
    into the recorder when the worker exits ({!Pool.shutdown} joins
    workers, which flush via {!flush_current_domain}), and the exporting
    domain's buffer is merged on {!spans}/{!to_json}.  Spans recorded on
    a worker domain therefore become visible only after its pool has shut
    down — which every [Pool] combinator guarantees before returning.

    Tracing is observational only: enabling it never changes analysis
    results (asserted by the bench harness on every run).

    {2 Call-site convention}

    Every recording function takes a [t option] so instrumented code can
    thread an optional recorder without matching: [Trace.span trace
    "parse" f] runs [f] untraced when [trace = None]. *)

type value =
  | Bool of bool
  | Int of int
  | Float of float
  | String of string  (** Attribute values attached to spans. *)

type span = {
  name : string;  (** stable span name, e.g. ["parse"] or ["analyze"]. *)
  cat : string;  (** category: ["stage"], ["network"], ["pool"], ... *)
  ts_us : float;  (** start time, microseconds since the recorder epoch. *)
  dur_us : float;  (** duration in microseconds. *)
  tid : int;  (** recording domain's id (Chrome "thread"). *)
  depth : int;  (** nesting depth within the recording domain at start. *)
  args : (string * value) list;  (** key/value attributes. *)
}
(** A completed span. *)

type t
(** A span recorder.  Create one per run; share it freely across
    domains. *)

val create : unit -> t
(** A fresh recorder whose epoch is the moment of creation. *)

val now : unit -> float
(** Current wall-clock time in seconds ([Unix.gettimeofday]). *)

type handle
(** An open span, to be closed with {!end_span} in the same domain. *)

val begin_span : ?cat:string -> ?args:(string * value) list -> t option -> string -> handle
(** Open a span.  [cat] defaults to ["stage"].  A [None] recorder yields
    a no-op handle. *)

val end_span : ?args:(string * value) list -> handle -> unit
(** Close the span, appending [args] to those given at {!begin_span}.
    Must run in the domain that opened it. *)

val span : ?cat:string -> ?args:(string * value) list -> t option -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] inside a span, closing it even when [f]
    raises.  [span None name f] is exactly [f ()]. *)

val span_with :
  ?cat:string ->
  ?args:(string * value) list ->
  t option -> string -> ('a -> (string * value) list) -> (unit -> 'a) -> 'a
(** [span_with t name post f] is {!span}, but on success attaches
    [post result] as additional attributes — for sizes and counts that
    are only known once the stage has run. *)

val flush_current_domain : unit -> unit
(** Merge the calling domain's buffered spans (for every recorder it has
    touched) into the shared recorders.  {!Pool} workers call this as
    they exit; call it yourself only from hand-rolled domains. *)

val spans : t -> span list
(** All merged spans in start-time order.  Flushes the calling domain's
    buffer first. *)

val stage_table : ?cat:string -> t -> (string * float * int) list
(** [(name, total seconds, span count)] aggregated over spans of
    category [cat] (default ["stage"]), in first-start order — the
    successor of [Timing.stages]. *)

val total : ?cat:string -> t -> float
(** Sum of stage totals over category [cat] (default ["stage"]). *)

val render_stages : ?cat:string -> t -> string
(** Human-readable per-stage table (stage, seconds, spans, and a total
    row) — the [rdna study --timing] output. *)

val to_json : t -> Json.t
(** Chrome [trace_event] JSON: [{"traceEvents": [...]}] with one
    complete-duration ("ph":"X") event per span, timestamps in
    microseconds. *)

val to_file : t -> string -> unit
(** Write {!to_json} to a file. *)

val reset : t -> unit
(** Drop all merged spans and the calling domain's buffer.  Only call
    between runs, after every pool has shut down. *)

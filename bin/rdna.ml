(* rdna — Routing Design Network Analyzer.

   Command-line front end for the reverse-engineering methodology:
   parse and anonymize configuration files, derive routing instances,
   pathways and reachability, generate synthetic networks, and run the
   31-network study. *)

open Cmdliner

(* --- shared helpers ----------------------------------------------------- *)

let die ~code fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "rdna: error [%s]: %s\n" code msg;
      exit 1)
    fmt

(* Failures an entry point can legitimately hit — unreadable input,
   injected chaos, a blown budget — become one-line coded errors on
   stderr with exit 1.  A raw backtrace reaching the user is a bug. *)
let guard f =
  try f () with
  | Sys_error msg -> die ~code:"io" "%s" msg
  | Rd_util.Cancel.Cancelled _ as e ->
    (* 130, the shell's interrupted convention — distinct from the coded
       exit 1, so wrappers can tell "stopped on request or deadline"
       from "found problems". *)
    Printf.eprintf "rdna: error [cancelled]: %s\n" (Printexc.to_string e);
    exit 130
  | Rd_util.Fault.Injected _ as e -> die ~code:"fault-injected" "%s" (Printexc.to_string e)
  | Rd_util.Limits.Budget_exceeded _ as e ->
    die ~code:"budget-exceeded" "%s" (Printexc.to_string e)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let load_dir dir =
  if not (Sys.file_exists dir) then die ~code:"no-such-dir" "%s: no such directory" dir;
  if not (Sys.is_directory dir) then die ~code:"not-a-dir" "%s: not a directory" dir;
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.filter_map (fun f ->
       let path = Filename.concat dir f in
       if Sys.is_directory path then None else Some (f, read_file path))

let analyze_dir dir = Rd_core.Analysis.analyze ~name:(Filename.basename dir) (load_dir dir)

(* --- deadlines, cancellation, checkpoint plumbing ----------------------- *)

(* Every long-running entry point builds one root token: [--deadline]
   arms it with an absolute expiry, SIGINT/SIGTERM trip it by hand.
   Work stops cooperatively at the next poll point; the command then
   renders whatever completed (partial tables included), flushes its
   trace/metrics/checkpoint sinks, and exits through
   [exit_interrupted]. *)
let root_token ?deadline () =
  let root = Rd_util.Cancel.create ?deadline () in
  let handle name = Sys.Signal_handle (fun _ -> Rd_util.Cancel.cancel ~reason:name root) in
  (try Sys.set_signal Sys.sigint (handle "SIGINT") with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigterm (handle "SIGTERM") with Invalid_argument _ | Sys_error _ -> ());
  root

(* Interrupted by signal: exit 130 after the partial output is out.  A
   tripped [--deadline] is not a signal — the run degrades per network
   and exits 1 through the failures path instead. *)
let exit_interrupted root =
  match Rd_util.Cancel.status root with
  | Some (Rd_util.Cancel.Stopped _) -> exit 130
  | _ -> ()

let open_checkpoint ?metrics ~resume dir_opt =
  match dir_opt with
  | None ->
    if resume then die ~code:"usage" "--resume requires --checkpoint DIR";
    None
  | Some d -> Some (Rd_study.Checkpoint.open_dir ?metrics d)

let checkpoint_stats = function
  | None -> ()
  | Some ck -> Printf.eprintf "%s\n" (Rd_study.Checkpoint.render_stats ck)

let deadline_arg =
  Cmdliner.Arg.(value & opt (some float) None
       & info [ "deadline" ] ~docv:"SEC"
           ~doc:"Whole-run budget: after $(docv) seconds every remaining network degrades \
                 to a Timed_out failure row at its next poll point (exit 1), instead of \
                 running to completion.")

let task_timeout_arg =
  Cmdliner.Arg.(value & opt (some float) None
       & info [ "task-timeout" ] ~docv:"SEC"
           ~doc:"Per-network budget, clocked from each network's start: one slow network \
                 degrades alone while the rest of the sweep completes.")

let checkpoint_arg =
  Cmdliner.Arg.(value & opt (some string) None
       & info [ "checkpoint" ] ~docv:"DIR"
           ~doc:"Durably persist each completed network's result to the content-addressed \
                 store in $(docv) as it finishes (atomic write-then-rename; corrupt entries \
                 degrade to misses).")

let resume_arg =
  Cmdliner.Arg.(value & flag
       & info [ "resume" ]
           ~doc:"Probe the $(b,--checkpoint) store before building each network and replay \
                 hits verbatim — an interrupted sweep restarted with $(b,--resume) produces \
                 a byte-identical report, skipping the finished networks (the stderr store \
                 stats line shows the hits).")

(* A plain string, not cmdliner's [dir] converter: the latter rejects a
   missing directory with its own usage-style message and exit 124,
   where every entry point must answer with a coded one-liner, exit 1. *)
let dir_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc:"Directory of configuration files.")

(* --- parse -------------------------------------------------------------- *)

let parse_cmd =
  let run dir strict =
    guard @@ fun () ->
    let errors = ref 0 in
    List.iter
      (fun (name, text) ->
        let c, diags = Rd_config.Parser.parse_with_diags ~file:name text in
        let e, w, _ = Rd_config.Diag.counts diags in
        errors := !errors + e;
        Printf.printf "%s: %d lines, %d commands, %d interfaces, %d processes, %d acls, %d route-maps, %d statics, %d unknown\n"
          name c.total_lines c.command_count (List.length c.interfaces)
          (List.length c.processes) (List.length c.acls) (List.length c.route_maps)
          (List.length c.statics) (List.length c.unknown);
        if strict && (e > 0 || w > 0) then
          List.iter (fun d -> print_endline ("  " ^ Rd_config.Diag.to_string d)) diags)
      (load_dir dir);
    if strict && !errors > 0 then begin
      Printf.eprintf "%d parse errors\n" !errors;
      exit 1
    end
  in
  let strict_arg =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"Print parse diagnostics and exit non-zero if any line of a modeled command \
                   was malformed (error-severity diagnostics).")
  in
  Cmd.v (Cmd.info "parse" ~doc:"Parse configuration files and report per-file statistics.")
    Term.(const run $ dir_arg $ strict_arg)

(* --- lint --------------------------------------------------------------- *)

let lint_cmd =
  let run dir json jobs =
    guard @@ fun () ->
    let diags = Rd_core.Lint.lint_files ~jobs (load_dir dir) in
    if json then print_endline (Rd_util.Json.to_string (Rd_core.Lint.to_json diags))
    else begin
      print_string (Rd_core.Lint.render diags);
      let e, w, i = Rd_config.Diag.counts diags in
      if e + w + i > 0 then Printf.printf "%d errors, %d warnings, %d notes\n" e w i
    end;
    if Rd_config.Diag.has_errors diags then exit 1
  in
  let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics as a JSON array.") in
  let jobs_arg =
    Arg.(value & opt int (Rd_util.Pool.default_jobs ())
         & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains for parallel linting.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Static checks on configuration files: parse diagnostics plus cross-reference and \
             consistency rules (dangling/unused/duplicate ACLs and route-maps, BGP neighbors \
             without remote-as, OSPF redistribution without metric, overlapping interface \
             addresses).  Exits non-zero if any error-severity finding is reported.")
    Term.(const run $ dir_arg $ json_arg $ jobs_arg)

(* --- anonymize ---------------------------------------------------------- *)

let anonymize_cmd =
  let run dir key out =
    guard @@ fun () ->
    let anonymizer = Rd_config.Anonymizer.create ~key in
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    List.iteri
      (fun i (_, text) ->
        let oc = open_out (Filename.concat out (Printf.sprintf "config%d" (i + 1))) in
        output_string oc (Rd_config.Anonymizer.anonymize_config anonymizer text);
        close_out oc)
      (load_dir dir);
    Printf.printf "anonymized files written to %s\n" out
  in
  let key_arg =
    Arg.(value & opt string "rdna" & info [ "key" ] ~docv:"KEY" ~doc:"Anonymization key.")
  in
  let out_arg =
    Arg.(value & opt string "anonymized" & info [ "out"; "o" ] ~docv:"OUT" ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "anonymize"
       ~doc:"Anonymize configuration files (SHA-1 token hashing, prefix-preserving addresses).")
    Term.(const run $ dir_arg $ key_arg $ out_arg)

(* --- summary / instances ------------------------------------------------ *)

let summary_cmd =
  let run dir = guard @@ fun () -> print_string (Rd_core.Analysis.summary (analyze_dir dir)) in
  Cmd.v
    (Cmd.info "summary" ~doc:"Full routing-design summary of a directory of configurations.")
    Term.(const run $ dir_arg)

let instances_cmd =
  let run dir =
    guard @@ fun () ->
    let a = analyze_dir dir in
    Array.iter
      (fun i -> print_endline (Rd_routing.Instance.to_string i))
      a.graph.assignment.instances;
    let ev = Rd_core.Design_class.classify a in
    Printf.printf "design classification: %s\n"
      (Rd_core.Design_class.design_to_string ev.design)
  in
  Cmd.v (Cmd.info "instances" ~doc:"List the network's routing instances.")
    Term.(const run $ dir_arg)

(* --- processes -------------------------------------------------------------- *)

let processes_cmd =
  let run dir =
    guard @@ fun () ->
    let a = analyze_dir dir in
    print_string (Rd_routing.Process_graph.render (Rd_routing.Process_graph.build a.catalog))
  in
  Cmd.v
    (Cmd.info "processes" ~doc:"The routing process graph: RIBs, adjacencies, redistributions (paper §3.1).")
    Term.(const run $ dir_arg)

(* --- roles ---------------------------------------------------------------- *)

let roles_cmd =
  let run dir =
    guard @@ fun () ->
    let a = analyze_dir dir in
    let c = Rd_core.Roles.count a in
    let row name (intra, inter) = [ name; string_of_int intra; string_of_int inter ] in
    Rd_util.Table.print
      ~headers:[ "protocol"; "intra"; "inter" ]
      ~aligns:[ Rd_util.Table.Left; Rd_util.Table.Right; Rd_util.Table.Right ]
      [
        row "OSPF (instances)" c.ospf;
        row "EIGRP (instances)" c.eigrp;
        row "RIP (instances)" c.rip;
        row "EBGP (sessions)" c.ebgp_sessions;
      ];
    let igp, ebgp = Rd_core.Roles.total_conventional_fraction c in
    Printf.printf "conventional: %.1f%% IGP intra, %.1f%% EBGP inter\n" (100.0 *. igp)
      (100.0 *. ebgp)
  in
  Cmd.v (Cmd.info "roles" ~doc:"Intra/inter-domain protocol roles (paper Table 1).")
    Term.(const run $ dir_arg)

(* --- areas ---------------------------------------------------------------- *)

let areas_cmd =
  let run dir =
    guard @@ fun () ->
    let a = analyze_dir dir in
    let infos = Rd_routing.Areas.analyze a.catalog a.graph.assignment in
    if infos = [] then print_endline "no OSPF instances"
    else List.iter (fun info -> print_string (Rd_routing.Areas.render a.catalog info)) infos
  in
  Cmd.v (Cmd.info "areas" ~doc:"OSPF area structure and area border routers.")
    Term.(const run $ dir_arg)

(* --- pathway ------------------------------------------------------------ *)

let pathway_cmd =
  let run dir router =
    guard @@ fun () ->
    let a = analyze_dir dir in
    match Rd_topo.Topology.router_index a.topo router with
    | None -> die ~code:"no-such-router" "%s: no such router" router
    | Some ri ->
      print_string (Rd_routing.Pathway.render a.graph (Rd_routing.Pathway.build a.graph ~router:ri))
  in
  let router_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"ROUTER" ~doc:"Router hostname or file name.")
  in
  Cmd.v (Cmd.info "pathway" ~doc:"Route pathway graph for a router (paper §3.3).")
    Term.(const run $ dir_arg $ router_arg)

(* --- reach -------------------------------------------------------------- *)

let reach_cmd =
  let run dir src dst =
    guard @@ fun () ->
    match (Rd_addr.Ipv4.of_string src, Rd_addr.Ipv4.of_string dst) with
    | Some s, Some d ->
      let a = analyze_dir dir in
      let r = Rd_reach.Reachability.compute a.graph in
      Printf.printf "%s -> %s: %b\n" src dst (Rd_reach.Reachability.can_reach r ~src:s ~dst:d);
      Printf.printf "%s -> %s: %b\n" dst src (Rd_reach.Reachability.can_reach r ~src:d ~dst:s)
    | None, _ -> die ~code:"bad-address" "%s: not an IPv4 address" src
    | _, None -> die ~code:"bad-address" "%s: not an IPv4 address" dst
  in
  let addr n doc = Arg.(required & pos n (some string) None & info [] ~docv:"ADDR" ~doc) in
  Cmd.v (Cmd.info "reach" ~doc:"Static reachability verdict between two addresses (§6.2).")
    Term.(const run $ dir_arg $ addr 1 "Source address." $ addr 2 "Destination address.")

(* --- dot ---------------------------------------------------------------- *)

let dot_cmd =
  let run dir which =
    guard @@ fun () ->
    match which with
    | "instances" -> print_string (Rd_routing.Instance_graph.to_dot (analyze_dir dir).graph)
    | "processes" ->
      print_string
        (Rd_routing.Process_graph.to_dot
           (Rd_routing.Process_graph.build (analyze_dir dir).catalog))
    | other -> die ~code:"unknown-graph" "%s: unknown graph (expected instances|processes)" other
  in
  let which_arg =
    Arg.(value & pos 1 string "instances" & info [] ~docv:"GRAPH" ~doc:"instances or processes.")
  in
  Cmd.v (Cmd.info "dot" ~doc:"Export the instance or process graph as Graphviz DOT.")
    Term.(const run $ dir_arg $ which_arg)

(* --- audit -------------------------------------------------------------- *)

let audit_cmd =
  let run dir json =
    guard @@ fun () ->
    let findings = Rd_core.Audit.run_all (analyze_dir dir) in
    if json then
      print_endline (Rd_util.Json.to_string (Rd_core.Audit.to_json findings))
    else begin
      print_string (Rd_core.Audit.render findings);
      Printf.printf "%d findings\n" (List.length findings)
    end
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the findings as a JSON array of diagnostics (stable audit-* codes).")
  in
  Cmd.v
    (Cmd.info "audit" ~doc:"Vulnerability/anomaly audit of a routing design (paper §8.1).")
    Term.(const run $ dir_arg $ json_arg)

(* --- inventory ------------------------------------------------------------ *)

let inventory_cmd =
  let run dir against =
    guard @@ fun () ->
    let a = analyze_dir dir in
    match against with
    | None -> print_string (Rd_core.Inventory.report a)
    | Some other ->
      let b = analyze_dir other in
      print_string
        (Rd_core.Inventory.render_delta (Rd_core.Inventory.diff ~old_snapshot:a ~new_snapshot:b))
  in
  let against_arg =
    Arg.(value & opt (some string) None & info [ "against" ] ~docv:"DIR" ~doc:"Diff against a newer snapshot directory.")
  in
  Cmd.v
    (Cmd.info "inventory" ~doc:"Equipment/addressing inventory, or a snapshot diff (paper §8.1).")
    Term.(const run $ dir_arg $ against_arg)

(* --- whatif ------------------------------------------------------------- *)

let whatif_cmd =
  let module J = Rd_util.Json in
  let outcome_json (o : Rd_core.Engine.outcome) =
    J.Obj
      [
        ("label", J.String o.scenario.label);
        ( "changes",
          J.List
            (List.map
               (fun c -> J.String (Rd_core.Whatif.change_to_string c))
               o.scenario.changes) );
        ("instances_before", J.Int o.diff.instances_before);
        ("instances_after", J.Int o.diff.instances_after);
        ("split_instances", J.Int (List.length o.diff.split_instances));
        ("lost_pairs", J.Int (List.length o.diff.lost_reachability));
        ("touched_files", J.List (List.map (fun f -> J.String f) o.touched));
        ("warnings", J.List (List.map (fun w -> J.String w) o.diff.warnings));
        ("seconds", J.Float o.seconds);
      ]
  in
  let cache_json engine =
    J.Obj
      (List.map
         (fun (name, (s : Rd_util.Cache.stats)) ->
           ( name,
             J.Obj
               [
                 ("hits", J.Int s.hits);
                 ("misses", J.Int s.misses);
                 ("evictions", J.Int s.evictions);
                 ("invalidations", J.Int s.invalidations);
               ] ))
         (Rd_core.Engine.stats engine))
  in
  let outcome_row network (o : Rd_core.Engine.outcome) =
    [
      network;
      o.scenario.label;
      Printf.sprintf "%d->%d" o.diff.instances_before o.diff.instances_after;
      string_of_int (List.length o.diff.split_instances);
      string_of_int (List.length o.diff.lost_reachability);
      string_of_int (List.length o.touched);
      Printf.sprintf "%.3f" o.seconds;
    ]
  in
  let render_table rows =
    print_string
      (Rd_util.Table.render
         ~headers:
           [ "network"; "scenario"; "instances"; "split"; "lost pairs"; "touched"; "seconds" ]
         ~aligns:
           Rd_util.Table.
             [ Left; Left; Right; Right; Right; Right; Right ]
         rows)
  in
  let run dir study seed only batch remove_routers remove_links shutdowns json metrics_flag
      trace_file deadline task_timeout checkpoint_dir resume =
    guard @@ fun () ->
    let trace = if trace_file <> None then Some (Rd_util.Trace.create ()) else None in
    let metrics = if metrics_flag then Some (Rd_util.Metrics.create ()) else None in
    let finish () =
      (match (trace, trace_file) with
       | Some t, Some path ->
         Rd_util.Trace.to_file t path;
         Printf.eprintf "trace written to %s (%d spans)\n" path
           (List.length (Rd_util.Trace.spans t))
       | _ -> ());
      match metrics with
      | Some m ->
        print_endline "--- metrics ---";
        print_string (Rd_util.Metrics.render m)
      | None -> ()
    in
    let inline_changes =
      List.map (fun r -> Rd_core.Whatif.Remove_router r) remove_routers
      @ List.map
          (fun l ->
            match Rd_addr.Prefix.of_string l with
            | Some p -> Rd_core.Whatif.Remove_link p
            | None -> die ~code:"usage" "--remove-link %s: not a prefix (a.b.c.d/len)" l)
          remove_links
      @ List.map
          (fun s ->
            match String.index_opt s ':' with
            | Some i when i > 0 && i < String.length s - 1 ->
              Rd_core.Whatif.Shutdown_interface
                (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
            | _ -> die ~code:"usage" "--shutdown-interface %s: expected ROUTER:IFACE" s)
          shutdowns
    in
    match (dir, study) with
    | Some _, true -> die ~code:"usage" "give either DIR or --study, not both"
    | None, false -> die ~code:"usage" "give a DIR of configurations or --study"
    | None, true ->
      if inline_changes <> [] || batch <> None then
        die ~code:"usage" "--study derives per-network scenarios; it excludes --batch and \
                           inline change flags";
      let only_opt = match only with [] -> None | ids -> Some ids in
      if json then begin
        if deadline <> None || task_timeout <> None || checkpoint_dir <> None || resume then
          die ~code:"usage" "--json excludes --deadline/--task-timeout/--checkpoint/--resume";
        let nets =
          Rd_study.Population.build ?only:only_opt ?metrics ?trace ~master_seed:seed ()
        in
        let engine = Rd_core.Engine.create ?metrics ?trace () in
        let networks =
          List.map
            (fun (n : Rd_study.Population.network) ->
              let net =
                Rd_core.Engine.load engine ~name:n.spec.label
                  (Rd_study.Population.generate_one n.spec)
              in
              let outcomes =
                Rd_core.Engine.run_scenarios engine net
                  (Rd_study.Experiments.default_scenarios n)
              in
              J.Obj
                [
                  ("network", J.String n.spec.label);
                  ("scenarios", J.List (List.map outcome_json outcomes));
                ])
            nets
        in
        print_endline
          (J.to_string (J.Obj [ ("networks", J.List networks); ("cache", cache_json engine) ]));
        finish ()
      end
      else begin
        let root = root_token ?deadline () in
        let checkpoint = open_checkpoint ?metrics ~resume checkpoint_dir in
        let report, failures =
          Rd_study.Driver.whatif ?metrics ?trace ~cancel:root ?task_timeout ?checkpoint
            ~resume ?only:only_opt ~master_seed:seed ()
        in
        print_string report;
        (if failures <> [] then
           let total =
             List.length
               (Rd_study.Population.wanted_specs ?only:only_opt ~master_seed:seed ())
           in
           print_string (Rd_study.Population.render_failures ~total failures));
        finish ();
        checkpoint_stats checkpoint;
        exit_interrupted root;
        if failures <> [] then exit 1
      end
    | Some d, false ->
      if checkpoint_dir <> None || resume then
        die ~code:"usage" "--checkpoint/--resume apply to --study sweeps";
      let root = root_token ?deadline () in
      let cancel =
        match task_timeout with
        | None -> root
        | Some dl -> Rd_util.Cancel.child ~deadline:dl root
      in
      let name = Filename.basename d in
      let files = load_dir d in
      let scenarios =
        match batch with
        | Some path ->
          if inline_changes <> [] then
            die ~code:"usage" "--batch excludes inline change flags";
          (match Rd_core.Whatif.parse_scenarios (read_file path) with
           | Ok [] -> die ~code:"usage" "%s: no scenarios" path
           | Ok s -> s
           | Error e -> die ~code:"bad-scenario" "%s: %s" path e)
        | None ->
          if inline_changes = [] then
            die ~code:"usage"
              "nothing to change (use --remove-router/--remove-link/--shutdown-interface, \
               or --batch FILE)"
          else [ { Rd_core.Whatif.label = "cli"; changes = inline_changes } ]
      in
      let engine = Rd_core.Engine.create ?metrics ?trace ~cancel () in
      let net = Rd_core.Engine.load engine ~name files in
      let outcomes = Rd_core.Engine.run_scenarios engine net scenarios in
      (if json then
         print_endline
           (J.to_string
              (J.Obj
                 [
                   ("network", J.String name);
                   ("scenarios", J.List (List.map outcome_json outcomes));
                   ("cache", cache_json engine);
                 ]))
       else
         match (batch, outcomes) with
         | None, [ o ] ->
           (* single inline scenario: the classic detailed diff *)
           print_string (Rd_core.Whatif.render o.diff)
         | _ -> render_table (List.map (outcome_row name) outcomes));
      finish ();
      exit_interrupted root
  in
  let dir_opt_arg =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"DIR" ~doc:"Directory of configuration files (omit with $(b,--study)).")
  in
  let study_arg =
    Arg.(value & flag
         & info [ "study" ]
             ~doc:"Sweep derived maintenance scenarios over every network of the 31-network \
                   study population through one shared incremental engine.")
  in
  let seed_arg =
    Arg.(value & opt int 2004 & info [ "seed" ] ~docv:"SEED" ~doc:"Master seed (with --study).")
  in
  let only_arg =
    Arg.(value & opt (list int) []
         & info [ "only" ] ~docv:"IDS" ~doc:"Comma-separated net ids (with --study).")
  in
  let batch_arg =
    Arg.(value & opt (some string) None
         & info [ "batch" ] ~docv:"SCENARIOS"
             ~doc:"Run every scenario of $(docv) (one per line: \
                   $(b,[LABEL:] CHANGE [; CHANGE]...) where a change is \
                   $(b,remove-router NAME), $(b,remove-link A.B.C.D/LEN), or \
                   $(b,shutdown-interface ROUTER IFACE); $(b,#) comments allowed) against \
                   the one loaded network, reusing parsed state, the baseline reachability \
                   fixpoint, and per-scenario artifacts between scenarios.")
  in
  let routers_arg =
    Arg.(value & opt_all string [] & info [ "remove-router" ] ~docv:"NAME" ~doc:"Take a router out of service.")
  in
  let links_arg =
    Arg.(value & opt_all string [] & info [ "remove-link" ] ~docv:"SUBNET" ~doc:"Shut the link with this subnet (a.b.c.d/len).")
  in
  let shutdown_arg =
    Arg.(value & opt_all string []
         & info [ "shutdown-interface" ] ~docv:"ROUTER:IFACE"
             ~doc:"Administratively shut one interface (colon-separated because interface \
                   names contain slashes, e.g. $(b,core1:Serial0/0)).")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit per-scenario impact records and engine cache statistics as JSON \
                   (what CI archives).")
  in
  let metrics_arg =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Collect cache hit/miss/eviction and fixpoint counters during the sweep \
                   and print the registry snapshot as tables.")
  in
  let trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace_event JSON timeline (cache-miss spans included) to \
                   $(docv).")
  in
  Cmd.v
    (Cmd.info "whatif"
       ~doc:"Model the effect of failures/maintenance on the design (paper §8.1), \
             incrementally: batch scenarios share one content-addressed engine, and each \
             scenario's reachability restarts from the baseline fixpoint's dirtied frontier \
             only.")
    Term.(const run $ dir_opt_arg $ study_arg $ seed_arg $ only_arg $ batch_arg $ routers_arg
          $ links_arg $ shutdown_arg $ json_arg $ metrics_arg $ trace_arg $ deadline_arg
          $ task_timeout_arg $ checkpoint_arg $ resume_arg)

(* --- crosscheck --------------------------------------------------------- *)

let crosscheck_cmd =
  let run dir study seed only jobs json shrink repro_dir inject deadline task_timeout
      checkpoint_dir resume =
    guard @@ fun () ->
    let faults =
      match inject with
      | Some spec -> (
        match Rd_util.Fault.of_spec spec with
        | Ok f -> Some f
        | Error msg -> die ~code:"bad-fault-spec" "--inject-faults: %s" msg)
      | None -> (
        match Rd_util.Fault.from_env () with
        | Ok f -> f
        | Error msg -> die ~code:"bad-fault-spec" "RDNA_FAULTS: %s" msg)
    in
    let shrink_one ~name ~files (r : Rd_check.Crosscheck.report) =
      match r.violations with
      | [] -> ()
      | v :: _ ->
        let violates fs = Rd_check.Crosscheck.violates ~invariant:v.invariant ~name fs in
        let minimal = Rd_check.Shrink.shrink ~violates files in
        let out = Filename.concat repro_dir (name ^ "-" ^ v.invariant) in
        Rd_check.Shrink.write_repro ~dir:out ~network:name ~invariant:v.invariant
          ~detail:v.detail minimal;
        Printf.eprintf "repro written to %s (%d of %d files)\n" out (List.length minimal)
          (List.length files)
    in
    match (dir, study) with
    | Some _, true -> die ~code:"usage" "give either DIR or --study, not both"
    | None, false -> die ~code:"usage" "give a DIR of configurations or --study"
    | Some d, false ->
      if checkpoint_dir <> None || resume then
        die ~code:"usage" "--checkpoint/--resume apply to --study sweeps";
      let root = root_token ?deadline () in
      let cancel =
        match task_timeout with
        | None -> root
        | Some dl -> Rd_util.Cancel.child ~deadline:dl root
      in
      let name = Filename.basename d in
      let files = load_dir d in
      let reports = [ Rd_check.Crosscheck.run ~cancel ?faults ~name files ] in
      if json then
        print_endline (Rd_util.Json.to_string (Rd_check.Crosscheck.to_json reports))
      else print_string (Rd_check.Crosscheck.render reports);
      if shrink then List.iter (shrink_one ~name ~files) reports;
      exit_interrupted root;
      if Rd_check.Crosscheck.has_errors reports then exit 1
    | None, true ->
      let only_opt = match only with [] -> None | ids -> Some ids in
      let root = root_token ?deadline () in
      let checkpoint = open_checkpoint ~resume checkpoint_dir in
      (* The fault spec changes results, so it joins the resume key — a
         resumed run under different chaos misses instead of replaying. *)
      let salt = match inject with Some spec -> [ "faults=" ^ spec ] | None -> [] in
      let results =
        Rd_study.Driver.crosscheck ?faults ~cancel:root ?task_timeout ~salt ~jobs
          ?checkpoint ~resume ?only:only_opt ~master_seed:seed ()
      in
      let reports = List.filter_map (fun (_, r) -> Result.to_option r) results in
      let failures =
        List.filter_map
          (fun (_, r) -> match r with Error f -> Some f | Ok _ -> None)
          results
      in
      if json then
        print_endline (Rd_util.Json.to_string (Rd_check.Crosscheck.to_json reports))
      else print_string (Rd_check.Crosscheck.render reports);
      if failures <> [] then
        print_string
          (Rd_study.Population.render_failures ~total:(List.length results) failures);
      if shrink then
        List.iter
          (fun ((spec : Rd_study.Population.spec), r) ->
            match r with
            | Ok (report : Rd_check.Crosscheck.report) when report.violations <> [] ->
              shrink_one ~name:spec.label
                ~files:(Rd_study.Population.generate_one spec)
                report
            | _ -> ())
          results;
      checkpoint_stats checkpoint;
      exit_interrupted root;
      if failures <> [] || Rd_check.Crosscheck.has_errors reports then exit 1
  in
  let dir_opt_arg =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"DIR" ~doc:"Directory of configuration files (omit with $(b,--study)).")
  in
  let study_arg =
    Arg.(value & flag
         & info [ "study" ] ~doc:"Cross-check every network of the 31-network study population.")
  in
  let seed_arg =
    Arg.(value & opt int 2004 & info [ "seed" ] ~docv:"SEED" ~doc:"Master seed (with --study).")
  in
  let only_arg =
    Arg.(value & opt (list int) []
         & info [ "only" ] ~docv:"IDS" ~doc:"Comma-separated net ids (with --study).")
  in
  let jobs_arg =
    Arg.(value & opt int (Rd_util.Pool.default_jobs ())
         & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains for parallel cross-checking.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON (what CI archives).")
  in
  let shrink_arg =
    Arg.(value & flag
         & info [ "shrink" ]
             ~doc:"Delta-debug each violating network to a minimal set of configuration \
                   files/stanzas and write a self-contained repro directory.")
  in
  let repro_arg =
    Arg.(value & opt string "crosscheck-repro"
         & info [ "repro-dir" ] ~docv:"DIR" ~doc:"Where $(b,--shrink) writes repro directories.")
  in
  let inject_arg =
    Arg.(value & opt (some string) None
         & info [ "inject-faults" ] ~docv:"SPEC"
             ~doc:"Deterministic chaos: inject faults per $(docv) (e.g. \
                   $(b,seed=7;crosscheck.network:delay=5:key=net16)); falls back to the \
                   $(b,RDNA_FAULTS) environment variable.")
  in
  Cmd.v
    (Cmd.info "crosscheck"
       ~doc:"Differential reachability cross-check: assert the concrete simulation's routes are \
             contained in the static analysis (sim\xe2\x8a\x86static oracle) and run the \
             metamorphic invariant suite (anonymize-structure, deny-filter monotonicity, \
             remove-router monotonicity, worklist=rounds).  Exits non-zero on any \
             error-severity violation.")
    Term.(const run $ dir_opt_arg $ study_arg $ seed_arg $ only_arg $ jobs_arg $ json_arg
          $ shrink_arg $ repro_arg $ inject_arg $ deadline_arg $ task_timeout_arg
          $ checkpoint_arg $ resume_arg)

(* --- netlint ------------------------------------------------------------ *)

let netlint_cmd =
  let run dir study seed only jobs rules json deadline task_timeout =
    guard @@ fun () ->
    let rules =
      match rules with
      | [] -> None
      | rs ->
        List.iter
          (fun r ->
            if not (List.mem r Rd_core.Netlint.all_rules) then
              die ~code:"unknown-rule" "%s: unknown rule (expected %s)" r
                (String.concat "|" Rd_core.Netlint.all_rules))
          rs;
        Some rs
    in
    let finish root reports failures total =
      if json then
        print_endline (Rd_util.Json.to_string (Rd_core.Netlint.to_json reports))
      else print_string (Rd_core.Netlint.render reports);
      if failures <> [] then
        print_string (Rd_study.Population.render_failures ~total failures);
      exit_interrupted root;
      if failures <> [] || Rd_core.Netlint.has_errors reports then exit 1
    in
    match (dir, study) with
    | Some _, true -> die ~code:"usage" "give either DIR or --study, not both"
    | None, false -> die ~code:"usage" "give a DIR of configurations or --study"
    | Some d, false ->
      let root = root_token ?deadline () in
      let cancel =
        match task_timeout with
        | None -> root
        | Some dl -> Rd_util.Cancel.child ~deadline:dl root
      in
      let name = Filename.basename d in
      let files = load_dir d in
      let reports = [ Rd_core.Netlint.run ~cancel ?rules ~name files ] in
      finish root reports [] 1
    | None, true ->
      let only_opt = match only with [] -> None | ids -> Some ids in
      let root = root_token ?deadline () in
      let results =
        Rd_study.Population.build_results ~cancel:root ?task_timeout ~jobs
          ?only:only_opt ~master_seed:seed ()
      in
      (* Lint sequentially over the built analyses; a SIGINT renders
         whatever finished. *)
      let reports, failures =
        List.fold_left
          (fun (rs, fs) -> function
            | Ok (nw : Rd_study.Population.network) ->
              if Rd_util.Cancel.cancelled (Some root) then (rs, fs)
              else
                let files = Rd_study.Population.generate_one nw.spec in
                ( Rd_core.Netlint.run_analysis ~cancel:root ?rules ~files
                    nw.analysis
                  :: rs,
                  fs )
            | Error f -> (rs, f :: fs))
          ([], []) results
      in
      finish root (List.rev reports) (List.rev failures) (List.length results)
  in
  let dir_opt_arg =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"DIR" ~doc:"Directory of configuration files (omit with $(b,--study)).")
  in
  let study_arg =
    Arg.(value & flag
         & info [ "study" ] ~doc:"Lint every network of the 31-network study population.")
  in
  let seed_arg =
    Arg.(value & opt int 2004 & info [ "seed" ] ~docv:"SEED" ~doc:"Master seed (with --study).")
  in
  let only_arg =
    Arg.(value & opt (list int) []
         & info [ "only" ] ~docv:"IDS" ~doc:"Comma-separated net ids (with --study).")
  in
  let jobs_arg =
    Arg.(value & opt int (Rd_util.Pool.default_jobs ())
         & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains for building the population.")
  in
  let rules_arg =
    Arg.(value & opt (list string) []
         & info [ "rules" ] ~docv:"RULES"
             ~doc:"Comma-separated rule families to run (default: all of \
                   redistribution-loop, route-leak, peer-consistency, shadowed-rules).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON (what CI archives).")
  in
  Cmd.v
    (Cmd.info "netlint"
       ~doc:"Network-wide semantic lint: redistribution-loop and route-leak dataflow over \
             the instance graph, BGP/OSPF peer-consistency checks, and shadowed \
             filter-rule detection.  Exits non-zero on any error-severity finding.")
    Term.(const run $ dir_opt_arg $ study_arg $ seed_arg $ only_arg $ jobs_arg $ rules_arg
          $ json_arg $ deadline_arg $ task_timeout_arg)

(* --- generate ----------------------------------------------------------- *)

let generate_cmd =
  let run arch n seed out =
    guard @@ fun () ->
    let archetype =
      match arch with
      | "backbone" -> Rd_gen.Archetype.Backbone
      | "enterprise" -> Rd_gen.Archetype.Enterprise
      | "compartment" -> Rd_gen.Archetype.Compartment
      | "restricted" -> Rd_gen.Archetype.Restricted
      | "tier2" -> Rd_gen.Archetype.Tier2
      | "hub-spoke" -> Rd_gen.Archetype.Hub_spoke
      | _ -> Rd_gen.Archetype.Igp_only
    in
    let net = Rd_gen.Archetype.generate archetype ~seed ~n ~index:seed () in
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    List.iter
      (fun (name, text) ->
        let oc = open_out (Filename.concat out name) in
        output_string oc text;
        close_out oc)
      (Rd_gen.Builder.to_texts net);
    Printf.printf "%d configurations written to %s\n" (Rd_gen.Builder.router_count net) out
  in
  let arch_arg =
    Arg.(value & pos 0 string "enterprise"
         & info [] ~docv:"ARCH"
             ~doc:"backbone|enterprise|compartment|restricted|tier2|hub-spoke|igp-only")
  in
  let n_arg = Arg.(value & opt int 30 & info [ "n" ] ~docv:"N" ~doc:"Router count.") in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let out_arg = Arg.(value & opt string "generated" & info [ "out"; "o" ] ~docv:"OUT" ~doc:"Output directory.") in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a synthetic network's configuration files.")
    Term.(const run $ arch_arg $ n_arg $ seed_arg $ out_arg)

(* --- study -------------------------------------------------------------- *)

let study_cmd =
  let run seed only jobs timing trace_file metrics_flag metrics_json inject fail_fast
      keep_going retries deadline task_timeout checkpoint_dir resume =
    guard @@ fun () ->
    if fail_fast && keep_going then
      die ~code:"usage" "--fail-fast and --keep-going are mutually exclusive";
    if fail_fast && (deadline <> None || task_timeout <> None || checkpoint_dir <> None || resume)
    then
      die ~code:"usage"
        "--fail-fast excludes --deadline/--task-timeout/--checkpoint/--resume (supervision \
         needs keep-going)";
    (* --timing is served from the same recorder as --trace; tracing and
       metrics are purely observational, so study output is byte-identical
       with or without them (the bench asserts this). *)
    let trace =
      if timing || trace_file <> None then Some (Rd_util.Trace.create ()) else None
    in
    let metrics =
      if metrics_flag || metrics_json <> None then Some (Rd_util.Metrics.create ()) else None
    in
    let faults =
      match inject with
      | Some spec -> (
        match Rd_util.Fault.of_spec spec with
        | Ok f -> Some f
        | Error msg -> die ~code:"bad-fault-spec" "--inject-faults: %s" msg)
      | None -> (
        match Rd_util.Fault.from_env () with
        | Ok f -> f
        | Error msg -> die ~code:"bad-fault-spec" "RDNA_FAULTS: %s" msg)
    in
    (match faults with Some f -> Rd_util.Fault.set_metrics f metrics | None -> ());
    let only_opt = match only with [] -> None | ids -> Some ids in
    (* Default discipline is keep-going: one bad network degrades into a
       failed-network row while the other thirty print normally.
       --fail-fast restores abort-on-first-failure (caught by [guard]). *)
    let items, failures, total, root, checkpoint =
      if fail_fast then
        let nets =
          Rd_study.Population.build ?only:only_opt ?trace ?metrics ?faults ~jobs
            ~master_seed:seed ()
        in
        let items =
          List.map
            (fun (n : Rd_study.Population.network) ->
              { Rd_study.Driver.stat = Rd_study.Netstat.of_network n; network = Some n })
            nets
        in
        (items, [], List.length nets, None, None)
      else
        let root = root_token ?deadline () in
        let checkpoint = open_checkpoint ?metrics ~resume checkpoint_dir in
        let results =
          Rd_study.Driver.study ?trace ?metrics ?faults ~cancel:root ?task_timeout ~retries
            ~jobs ?checkpoint ~resume ?only:only_opt ~master_seed:seed ()
        in
        let items, failures =
          List.partition_map
            (function Ok i -> Either.Left i | Error f -> Either.Right f)
            results
        in
        (items, failures, List.length results, Some root, checkpoint)
    in
    List.iter
      (fun (i : Rd_study.Driver.study_item) ->
        print_string (Rd_study.Netstat.render_block i.stat))
      items;
    if only = [] then begin
      let stats = List.map (fun (i : Rd_study.Driver.study_item) -> i.stat) items in
      print_string (Rd_study.Experiments.sec7_stats stats);
      print_string (Rd_study.Experiments.table1_stats stats);
      print_string (Rd_study.Experiments.table3_stats stats);
      print_string (Rd_study.Experiments.fig11_stats stats)
    end;
    if failures <> [] then
      print_string (Rd_study.Population.render_failures ~total failures);
    (* The study proper never runs the reachability fixpoint; when metrics
       were asked for, run it per network (results discarded) so the
       reach.* fixpoint counters are populated.  Checkpoint-replayed
       networks carry no analysis, so they contribute no counters. *)
    (match metrics with
     | None -> ()
     | Some _ ->
       List.iter
         (fun (i : Rd_study.Driver.study_item) ->
           match i.network with
           | Some (n : Rd_study.Population.network) ->
             ignore (Rd_reach.Reachability.compute ?metrics n.analysis.graph)
           | None -> ())
         items);
    (match trace with
     | Some t when timing ->
       Printf.printf "--- pipeline stage wall time (%d jobs) ---\n" jobs;
       print_string (Rd_util.Trace.render_stages t)
     | _ -> ());
    (match (trace, trace_file) with
     | Some t, Some path ->
       Rd_util.Trace.to_file t path;
       Printf.eprintf "trace written to %s (%d spans)\n" path
         (List.length (Rd_util.Trace.spans t))
     | _ -> ());
    (match metrics with
     | None -> ()
     | Some m ->
       if metrics_flag then begin
         print_endline "--- metrics ---";
         print_string (Rd_util.Metrics.render m)
       end;
       match metrics_json with
       | Some path ->
         Rd_util.Json.to_file path (Rd_util.Metrics.to_json m);
         Printf.eprintf "metrics written to %s\n" path
       | None -> ());
    checkpoint_stats checkpoint;
    (match root with Some r -> exit_interrupted r | None -> ());
    if failures <> [] then exit 1
  in
  let seed_arg = Arg.(value & opt int 2004 & info [ "seed" ] ~docv:"SEED" ~doc:"Master seed.") in
  let only_arg =
    Arg.(value & opt (list int) [] & info [ "only" ] ~docv:"IDS" ~doc:"Comma-separated net ids.")
  in
  let jobs_arg =
    Arg.(value & opt int (Rd_util.Pool.default_jobs ())
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Worker domains for the parallel study build (default: $(b,RDNA_JOBS) or the \
                   recommended domain count).")
  in
  let timing_arg =
    Arg.(value & flag
         & info [ "timing" ]
             ~doc:"Report per-stage pipeline wall time (aggregated from the span tracer).")
  in
  let trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace_event JSON timeline of the run to $(docv) (open in \
                   chrome://tracing or Perfetto).  Nested spans cover each network's analyze \
                   call, its pipeline stages, and pool tasks.")
  in
  let metrics_arg =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Collect parser/pool/instance/fixpoint metrics during the run and print the \
                   registry snapshot as tables.  Also runs the per-network reachability \
                   fixpoint (output unchanged) so reach.* counters are populated.")
  in
  let metrics_json_arg =
    Arg.(value & opt (some string) None
         & info [ "metrics-json" ] ~docv:"FILE"
             ~doc:"Like $(b,--metrics) but write the snapshot as JSON to $(docv).")
  in
  let inject_arg =
    Arg.(value & opt (some string) None
         & info [ "inject-faults" ] ~docv:"SPEC"
             ~doc:"Deterministic chaos: inject faults per $(docv) (e.g. \
                   $(b,seed=7;study.network:raise:key=net4)); falls back to the \
                   $(b,RDNA_FAULTS) environment variable.  See the Fault module for the \
                   grammar.")
  in
  let fail_fast_arg =
    Arg.(value & flag
         & info [ "fail-fast" ]
             ~doc:"Abort the whole study on the first network whose analysis fails, with a \
                   coded error and exit 1 (the strict discipline).")
  in
  let keep_going_arg =
    Arg.(value & flag
         & info [ "keep-going" ]
             ~doc:"Degrade per network (the default): failed networks are reported in a \
                   trailing table, survivors print normally, and the exit status is 1 when \
                   any network failed.")
  in
  let retries_arg =
    Arg.(value & opt int 0
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retry a failed network build up to $(docv) extra times before recording \
                   it as failed (keep-going mode only).")
  in
  Cmd.v (Cmd.info "study" ~doc:"Run the 31-network study (paper §5-§7).")
    Term.(const run $ seed_arg $ only_arg $ jobs_arg $ timing_arg $ trace_arg $ metrics_arg
          $ metrics_json_arg $ inject_arg $ fail_fast_arg $ keep_going_arg $ retries_arg
          $ deadline_arg $ task_timeout_arg $ checkpoint_arg $ resume_arg)

let () =
  let info = Cmd.info "rdna" ~version:"1.0.0" ~doc:"Routing design reverse engineering (SIGCOMM'04 reproduction)." in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            parse_cmd; lint_cmd; anonymize_cmd; summary_cmd; instances_cmd; processes_cmd; areas_cmd;
            roles_cmd; pathway_cmd; reach_cmd; dot_cmd; audit_cmd; inventory_cmd; whatif_cmd;
            crosscheck_cmd; netlint_cmd; generate_cmd; study_cmd;
          ]))
